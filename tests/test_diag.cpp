// Tests for the diagnostics subsystem itself: the error taxonomy, the
// CLI exit-code mapping and the scoped warnings channel.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "diag/error.h"
#include "diag/warnings.h"

namespace rlcx::diag {
namespace {

TEST(DiagTaxonomy, CategoryNames) {
  EXPECT_STREQ(to_string(Category::kGeometry), "geometry");
  EXPECT_STREQ(to_string(Category::kNumeric), "numeric");
  EXPECT_STREQ(to_string(Category::kIo), "io");
  EXPECT_STREQ(to_string(Category::kCache), "cache");
  EXPECT_STREQ(to_string(Category::kUsage), "usage");
  EXPECT_STREQ(to_string(Category::kCancelled), "cancelled");
  EXPECT_STREQ(to_string(Category::kDeadline), "deadline");
  EXPECT_STREQ(to_string(Category::kOverloaded), "overloaded");
}

TEST(DiagTaxonomy, ExitCodeContract) {
  // The documented contract (docs/robustness.md): scripts key off these.
  EXPECT_EQ(exit_code(Category::kUsage), 2);
  EXPECT_EQ(exit_code(Category::kGeometry), 3);
  EXPECT_EQ(exit_code(Category::kIo), 3);
  EXPECT_EQ(exit_code(Category::kCache), 3);
  EXPECT_EQ(exit_code(Category::kNumeric), 4);
  EXPECT_EQ(exit_code(Category::kCancelled), 5);
  EXPECT_EQ(exit_code(Category::kDeadline), 5);
  EXPECT_EQ(exit_code(Category::kOverloaded), 6);
}

TEST(DiagTaxonomy, OverloadedIsTypedAndCatchableAsFault) {
  try {
    throw OverloadedError("serve", "admission queue full");
  } catch (const Fault& f) {
    EXPECT_EQ(f.category(), Category::kOverloaded);
  }
  EXPECT_THROW(throw OverloadedError("serve", "m"), std::runtime_error);
}

TEST(DiagTaxonomy, CancellationFaultsAreTypedAndCatchableAsFault) {
  try {
    throw CancelledError("rt", "cancellation requested");
  } catch (const Fault& f) {
    EXPECT_EQ(f.category(), Category::kCancelled);
  }
  try {
    throw DeadlineExceeded("rt", "deadline passed");
  } catch (const Fault& f) {
    EXPECT_EQ(f.category(), Category::kDeadline);
  }
  // Both stay on the runtime_error side of the dual hierarchy.
  EXPECT_THROW(throw CancelledError("rt", "m"), std::runtime_error);
  EXPECT_THROW(throw DeadlineExceeded("rt", "m"), std::runtime_error);
}

TEST(DiagTaxonomy, FormatError) {
  EXPECT_EQ(format_error(Category::kNumeric, "lu", "zero pivot"),
            "[numeric] lu: zero pivot");
}

TEST(DiagTaxonomy, WhatCarriesCategoryStageAndMessage) {
  const NumericError e("transient", "diverging voltage");
  EXPECT_STREQ(e.what(), "[numeric] transient: diverging voltage");
  EXPECT_EQ(e.category(), Category::kNumeric);
  EXPECT_EQ(e.stage(), "transient");
  EXPECT_EQ(e.message(), "diverging voltage");
}

// The dual hierarchy: rejected inputs keep the std::invalid_argument
// contract, runtime failures keep std::runtime_error, and all of them are
// catchable as Fault.
TEST(DiagTaxonomy, LeafTypesKeepHistoricalStdContracts) {
  EXPECT_THROW(throw GeometryError("block", "zero width"),
               std::invalid_argument);
  EXPECT_THROW(throw UsageError("cli", "bad flag"), std::invalid_argument);
  EXPECT_THROW(throw NumericError("fd2d", "NaN"), std::runtime_error);
  EXPECT_THROW(throw IoError("table", "truncated"), std::runtime_error);
  EXPECT_THROW(throw CacheError("cache", "corrupt"), std::runtime_error);

  try {
    throw GeometryError("block", "zero width");
  } catch (const Fault& f) {
    EXPECT_EQ(f.category(), Category::kGeometry);
  }
}

TEST(DiagTaxonomy, CategoryOfUsesFallbackForUncategorized) {
  const NumericError numeric("lu", "zero pivot");
  EXPECT_EQ(category_of(numeric, Category::kUsage), Category::kNumeric);
  const std::runtime_error plain("plain");
  EXPECT_EQ(category_of(plain, Category::kUsage), Category::kUsage);
}

TEST(DiagTaxonomy, SingularSystemCarriesProvenance) {
  const SingularSystem s("lu", "zero pivot at column 3", 3, 7,
                         std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.column(), 3u);
  EXPECT_EQ(s.dimension(), 7u);
  EXPECT_TRUE(std::isinf(s.condition_estimate()));
  EXPECT_EQ(s.category(), Category::kNumeric);
  // And it is still catchable at every level of the hierarchy.
  EXPECT_THROW(throw SingularSystem("lu", "m", 0, 1, 1.0), NumericError);
  EXPECT_THROW(throw SingularSystem("lu", "m", 0, 1, 1.0),
               std::runtime_error);
}

TEST(DiagWarnings, FormatWarning) {
  const Warning w{Category::kCache, "cache", "quarantined entry"};
  EXPECT_EQ(format_warning(w), "warning: [cache] cache: quarantined entry");
}

TEST(DiagWarnings, ScopedHandlerCapturesAndRestores) {
  std::vector<Warning> outer_seen, inner_seen;
  ScopedWarningHandler outer(
      [&](const Warning& w) { outer_seen.push_back(w); });
  emit_warning(Category::kNumeric, "fd2d", "one");
  {
    // Innermost wins while alive...
    ScopedWarningHandler inner(
        [&](const Warning& w) { inner_seen.push_back(w); });
    emit_warning(Category::kIo, "table", "two");
  }
  // ...and the outer handler is restored on destruction.
  emit_warning(Category::kGeometry, "block", "three");

  ASSERT_EQ(outer_seen.size(), 2u);
  EXPECT_EQ(outer_seen[0].stage, "fd2d");
  EXPECT_EQ(outer_seen[1].message, "three");
  ASSERT_EQ(inner_seen.size(), 1u);
  EXPECT_EQ(inner_seen[0].category, Category::kIo);
}

TEST(DiagWarnings, DedupScopeSuppressesIdenticalWarnings) {
  std::vector<Warning> seen;
  ScopedWarningHandler handler(
      [&](const Warning& w) { seen.push_back(w); });
  {
    ScopedWarningDedup dedup;
    emit_warning(Category::kNumeric, "sor", "slow convergence");
    emit_warning(Category::kNumeric, "sor", "slow convergence");  // dup
    emit_warning(Category::kNumeric, "sor", "slow convergence");  // dup
    emit_warning(Category::kNumeric, "sor", "another message");
    EXPECT_EQ(ScopedWarningDedup::suppressed_count(), 2u);
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].message, "slow convergence");
  EXPECT_EQ(seen[1].message, "another message");

  // Outside any dedup scope every emission passes through again.
  emit_warning(Category::kNumeric, "sor", "slow convergence");
  EXPECT_EQ(seen.size(), 3u);
}

TEST(DiagWarnings, DedupScopesNestAsOneWindow) {
  std::vector<Warning> seen;
  ScopedWarningHandler handler(
      [&](const Warning& w) { seen.push_back(w); });
  {
    ScopedWarningDedup outer;
    emit_warning(Category::kCache, "cache", "same");
    {
      // A nested scope (a nested parallel region) joins the outer window
      // rather than resetting it.
      ScopedWarningDedup inner;
      emit_warning(Category::kCache, "cache", "same");
    }
    emit_warning(Category::kCache, "cache", "same");
  }
  EXPECT_EQ(seen.size(), 1u);
  // A fresh window starts clean.
  {
    ScopedWarningDedup again;
    emit_warning(Category::kCache, "cache", "same");
  }
  EXPECT_EQ(seen.size(), 2u);
}

}  // namespace
}  // namespace rlcx::diag
