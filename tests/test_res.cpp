// Resource governance (src/res): the memory budget, its estimators, the
// dense->hmat degradation ladder, cost-based admission and bad_alloc
// containment.
//
// The contract under test (docs/robustness.md "Resource governance"):
//   * estimators predict a stage's resident bytes to within 2x of the
//     measured allocation peak;
//   * an over-budget dense solve degrades to the hierarchical path (one
//     typed warning, one counted degradation) before anything is refused;
//   * a refusal is the typed diag::ResourceExhaustedError (exit code 7),
//     raised at the coarse serial reservation points — each of which is
//     the `alloc_fail` injection site, so every ladder rung is drivable
//     without real memory pressure;
//   * the degrade/refuse decision is identical across pool widths;
//   * std::bad_alloc is contained at the request boundary as exit code 7.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "core/table_builder.h"
#include "diag/error.h"
#include "diag/warnings.h"
#include "geom/block.h"
#include "geom/technology.h"
#include "hmat/cluster_tree.h"
#include "hmat/hmatrix.h"
#include "hmat/kernel_matrix.h"
#include "hmat/stats.h"
#include "numeric/matrix.h"
#include "numeric/units.h"
#include "peec/assembly.h"
#include "res/budget.h"
#include "rt/parallel.h"
#include "rt/pool.h"
#include "run/fault_injection.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/table_store.h"
#include "solver/block_solver.h"

namespace rlcx {
namespace {

namespace fs = std::filesystem;
using units::um;

const geom::Technology& tech() {
  static const geom::Technology t = geom::Technology::generic_025um();
  return t;
}

/// Every test runs against the process-global budget, so each one starts
/// unlimited with the injector disarmed and restores what it found.
class ResTest : public ::testing::Test {
 protected:
  void SetUp() override {
    run::FaultInjector::global().clear();
    saved_limit_ = res::Budget::global().limit();
    res::Budget::global().set_limit(0);
  }
  void TearDown() override {
    run::FaultInjector::global().clear();
    res::Budget::global().set_limit(saved_limit_);
  }

 private:
  std::uint64_t saved_limit_ = 0;
};

geom::Block make_block(int traces, double trace_um, double spacing_um,
                       double length_um) {
  std::vector<geom::Trace> ts;
  double center = 0.0;
  for (int i = 0; i < traces; ++i) {
    ts.push_back({geom::TraceRole::kSignal, um(trace_um), center,
                  "t" + std::to_string(i)});
    center += um(trace_um + spacing_um);
  }
  return geom::Block(&tech(), 6, um(length_um), std::move(ts),
                     geom::PlaneConfig::kNone);
}

solver::SolveOptions meshed_options(int nw, int nt) {
  solver::SolveOptions opt;
  opt.frequency = 1e9;
  opt.auto_mesh = false;
  opt.mesh.nw = nw;
  opt.mesh.nt = nt;
  return opt;
}

peec::Bar strip_bar(double t_min, double width) {
  peec::Bar b;
  b.axis = peec::Axis::kY;
  b.a_min = 0.0;
  b.length = um(400);
  b.t_min = t_min;
  b.t_width = width;
  b.z_min = 0.0;
  b.z_thick = um(0.5);
  return b;
}

std::vector<peec::Filament> strip_mesh(std::size_t n) {
  std::vector<peec::Filament> fils;
  for (std::size_t i = 0; i < n; ++i)
    fils.push_back({strip_bar(static_cast<double>(i) * um(3), um(1)),
                    1.0, 0.1});
  return fils;
}

core::TableGrid tiny_grid(double length_scale = 1.0) {
  core::TableGrid g;
  g.widths = {um(2), um(8)};
  g.spacings = {um(1), um(4)};
  g.lengths = {um(200 * length_scale), um(1000 * length_scale)};
  return g;
}

struct ScratchDir {
  std::string path;
  explicit ScratchDir(const std::string& name)
      : path((fs::path(::testing::TempDir()) / name).string()) {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// ---- Accounting ------------------------------------------------------

TEST_F(ResTest, AccountingTracksAndPeaks) {
  res::Budget& b = res::Budget::global();
  const std::uint64_t base = b.tracked();
  b.reset_peak();
  b.account(1000);
  EXPECT_EQ(b.tracked(), base + 1000);
  EXPECT_GE(b.peak(), base + 1000);
  b.unaccount(1000);
  EXPECT_EQ(b.tracked(), base);
  EXPECT_GE(b.peak(), base + 1000);  // the high-water survives the release
  b.reset_peak();
  EXPECT_EQ(b.peak(), b.in_use());
}

TEST_F(ResTest, MatrixAllocationsAreTracked) {
  res::Budget& b = res::Budget::global();
  const std::uint64_t base = b.tracked();
  {
    const Matrix<double> m(64, 64);
    EXPECT_GE(b.tracked(), base + 64 * 64 * sizeof(double));
  }
  EXPECT_EQ(b.tracked(), base);
}

TEST_F(ResTest, DefaultLimitReadsEnvironment) {
  ::setenv("RLCX_MEM_BUDGET", "64", 1);
  EXPECT_EQ(res::default_limit_bytes(), 64ull * 1024 * 1024);
  ::setenv("RLCX_MEM_BUDGET", "0", 1);
  EXPECT_EQ(res::default_limit_bytes(), 0u);
  ::setenv("RLCX_MEM_BUDGET", "not-a-number", 1);
  std::vector<diag::Warning> warnings;
  {
    const diag::ScopedWarningHandler capture(
        [&](const diag::Warning& w) { warnings.push_back(w); });
    EXPECT_GT(res::default_limit_bytes(), 0u);  // falls back to RAM/2
  }
  ASSERT_FALSE(warnings.empty());
  EXPECT_EQ(warnings[0].category, diag::Category::kUsage);
  ::unsetenv("RLCX_MEM_BUDGET");
}

// ---- Estimators vs measured peaks ------------------------------------

TEST_F(ResTest, FillEstimateWithin2xOfMeasuredPeak) {
  const std::vector<peec::Filament> fils = strip_mesh(120);
  res::Budget& b = res::Budget::global();
  const std::uint64_t before = b.in_use();
  b.reset_peak();
  {
    // The ambient cover makes the fill skip its own reservation, so the
    // peak delta is pure tracked allocation (plus the 1 KiB cover).
    const res::ScopedReservation cover("test-cover", 1024);
    const RealMatrix lp =
        peec::partial_inductance_matrix(fils, peec::PartialOptions{});
    EXPECT_EQ(lp.rows(), fils.size());
  }
  const std::uint64_t measured = b.peak() - before;
  const std::size_t estimate = peec::estimate_fill_bytes(fils.size());
  EXPECT_LE(measured, 2 * estimate) << "estimate " << estimate;
  EXPECT_GE(2 * measured, estimate) << "measured " << measured;
}

TEST_F(ResTest, DenseSolveEstimateWithin2xOfMeasuredPeak) {
  const geom::Block blk = make_block(3, 2.0, 4.0, 800.0);
  solver::SolveOptions opt = meshed_options(5, 5);
  opt.solver = solver::SolverKind::kDense;
  const std::size_t estimate = solver::estimate_extract_bytes(blk, opt);
  res::Budget& b = res::Budget::global();
  const std::uint64_t before = b.in_use();
  b.reset_peak();
  const solver::PartialResult r = solver::extract_partial(blk, opt);
  EXPECT_GT(r.inductance(0, 0), 0.0);
  // The peak includes the solver's own reservation (which equals the
  // estimate by construction); the remainder is the measured allocation.
  const std::uint64_t peak_delta = b.peak() - before;
  ASSERT_GE(peak_delta, estimate);
  const std::uint64_t measured = peak_delta - estimate;
  EXPECT_LE(measured, 2 * estimate)
      << "dense solve allocated " << measured << " vs estimate "
      << estimate;
  EXPECT_GE(2 * measured, estimate)
      << "dense solve allocated " << measured << " vs estimate "
      << estimate;
}

// ---- The degradation ladder ------------------------------------------

TEST_F(ResTest, BudgetForcesDenseToHmatDegradation) {
  // Big enough that the dense footprint (~24 n^2 bytes) dwarfs the hmat
  // one (~2 n^2 + O(n)): 4 traces x 5 x 8 = 160 filaments.
  const geom::Block blk = make_block(4, 2.0, 4.0, 1200.0);
  solver::SolveOptions opt = meshed_options(5, 8);
  opt.solver = solver::SolverKind::kDense;
  res::Budget& b = res::Budget::global();
  const std::size_t dense_est = solver::estimate_extract_bytes(blk, opt);

  // Oracle first, unlimited.
  const solver::PartialResult dense = solver::extract_partial(blk, opt);

  // A budget one byte short of the dense path: the ladder must degrade,
  // warn once, and still produce a close answer.
  const res::Stats s0 = b.stats();
  const hmat::SolveStats h0 = hmat::solve_stats_total();
  b.set_limit(b.in_use() + dense_est - 1);
  std::vector<diag::Warning> warnings;
  solver::PartialResult degraded = dense;
  {
    const diag::ScopedWarningHandler capture(
        [&](const diag::Warning& w) { warnings.push_back(w); });
    degraded = solver::extract_partial(blk, opt);
  }
  b.set_limit(0);
  const res::Stats s1 = b.stats();
  const hmat::SolveStats h1 = hmat::solve_stats_total();
  EXPECT_EQ(s1.degradations - s0.degradations, 1u);
  EXPECT_EQ(s1.refusals - s0.refusals, 0u);
  EXPECT_EQ(h1.hmat_solves - h0.hmat_solves, 1u);
  ASSERT_FALSE(warnings.empty());
  EXPECT_EQ(warnings[0].category, diag::Category::kResourceExhausted);
  EXPECT_NE(warnings[0].message.find("degrading"), std::string::npos);
  // Graceful means no loss of answer: hmat agrees with dense tightly.
  const double rel = std::abs(degraded.inductance(0, 0) -
                              dense.inductance(0, 0)) /
                     std::abs(dense.inductance(0, 0));
  EXPECT_LT(rel, 1e-6);
}

TEST_F(ResTest, BudgetBelowBothPathsRefusesTyped) {
  const geom::Block blk = make_block(4, 2.0, 4.0, 1200.0);
  solver::SolveOptions opt = meshed_options(5, 8);
  opt.solver = solver::SolverKind::kDense;
  res::Budget& b = res::Budget::global();
  const res::Stats s0 = b.stats();
  b.set_limit(1);  // nothing fits (but not 0 = unlimited)
  std::vector<diag::Warning> warnings;
  {
    const diag::ScopedWarningHandler capture(
        [&](const diag::Warning& w) { warnings.push_back(w); });
    EXPECT_THROW(solver::extract_partial(blk, opt),
                 diag::ResourceExhaustedError);
  }
  b.set_limit(0);
  const res::Stats s1 = b.stats();
  EXPECT_EQ(s1.degradations - s0.degradations, 1u);  // ladder ran first
  EXPECT_EQ(s1.refusals - s0.refusals, 1u);
}

// ---- alloc_fail at every reservation site ----------------------------

TEST_F(ResTest, AllocFailAtPeecFillThrowsTyped) {
  const std::vector<peec::Filament> fils = strip_mesh(16);
  run::FaultInjector::global().set_schedule("alloc_fail:1");
  EXPECT_THROW(
      peec::partial_inductance_matrix(fils, peec::PartialOptions{}),
      diag::ResourceExhaustedError);
}

TEST_F(ResTest, AllocFailAtHmatAssemblyThrowsTyped) {
  const std::vector<peec::Filament> fils = strip_mesh(48);
  const hmat::ClusterTree tree(fils, 8);
  const hmat::KernelMatrix km(fils, peec::PartialOptions{});
  run::FaultInjector::global().set_schedule("alloc_fail:1");
  EXPECT_THROW(hmat::HMatrix(km, tree, hmat::HmatOptions{}),
               diag::ResourceExhaustedError);
}

TEST_F(ResTest, AllocFailAtTableGridFailsBeforeFirstSolve) {
  core::reset_table_build_solve_count();
  run::FaultInjector::global().set_schedule("alloc_fail:1");
  EXPECT_THROW(core::build_tables(tech(), 6, geom::PlaneConfig::kNone,
                                  tiny_grid(), meshed_options(1, 1),
                                  /*threads=*/1),
               diag::ResourceExhaustedError);
  // The refusal happened at grid construction — zero field solves ran.
  EXPECT_EQ(core::table_build_solve_count(), 0u);
}

TEST_F(ResTest, AllocFailAtDenseProbeDegradesToHmat) {
  const geom::Block blk = make_block(3, 2.0, 4.0, 800.0);
  solver::SolveOptions opt = meshed_options(4, 4);
  opt.solver = solver::SolverKind::kDense;
  const res::Stats s0 = res::Budget::global().stats();
  run::FaultInjector::global().set_schedule("alloc_fail:1");
  std::vector<diag::Warning> warnings;
  {
    const diag::ScopedWarningHandler capture(
        [&](const diag::Warning& w) { warnings.push_back(w); });
    const solver::PartialResult r = solver::extract_partial(blk, opt);
    EXPECT_GT(r.inductance(0, 0), 0.0);
  }
  const res::Stats s1 = res::Budget::global().stats();
  EXPECT_EQ(s1.degradations - s0.degradations, 1u);
  ASSERT_FALSE(warnings.empty());
  EXPECT_EQ(warnings[0].category, diag::Category::kResourceExhausted);
}

TEST_F(ResTest, PersistentAllocFailExhaustsTheLadder) {
  const geom::Block blk = make_block(3, 2.0, 4.0, 800.0);
  solver::SolveOptions opt = meshed_options(4, 4);
  opt.solver = solver::SolverKind::kDense;
  const res::Stats s0 = res::Budget::global().stats();
  run::FaultInjector::global().set_schedule("alloc_fail:1+");
  std::vector<diag::Warning> warnings;
  {
    const diag::ScopedWarningHandler capture(
        [&](const diag::Warning& w) { warnings.push_back(w); });
    EXPECT_THROW(solver::extract_partial(blk, opt),
                 diag::ResourceExhaustedError);
  }
  const res::Stats s1 = res::Budget::global().stats();
  EXPECT_EQ(s1.degradations - s0.degradations, 1u);
  EXPECT_GE(s1.refusals - s0.refusals, 1u);
}

TEST_F(ResTest, AllocFailAtAdmissionRefuses) {
  const res::Stats s0 = res::Budget::global().stats();
  run::FaultInjector::global().set_schedule("alloc_fail:1");
  EXPECT_TRUE(res::admission_exhausted(4096));
  run::FaultInjector::global().clear();
  EXPECT_FALSE(res::admission_exhausted(4096));  // unlimited budget
  const res::Stats s1 = res::Budget::global().stats();
  EXPECT_EQ(s1.refusals - s0.refusals, 1u);
}

// ---- Pool-width determinism ------------------------------------------

TEST_F(ResTest, DegradationDecisionIdenticalAcrossPoolWidths) {
  const geom::Block blk = make_block(3, 2.0, 4.0, 800.0);
  solver::SolveOptions opt = meshed_options(4, 4);
  opt.solver = solver::SolverKind::kDense;
  struct Run {
    double l00;
    std::uint64_t degradations;
    std::uint64_t fault_calls;
  };
  std::vector<Run> runs;
  for (const int width : {1, 2, 7, 0}) {
    rt::Pool::set_global_threads(width);
    const res::Stats s0 = res::Budget::global().stats();
    run::FaultInjector::global().set_schedule("alloc_fail:1");
    std::vector<diag::Warning> sink;
    double l00 = 0.0;
    {
      const diag::ScopedWarningHandler capture(
          [&](const diag::Warning& w) { sink.push_back(w); });
      l00 = solver::extract_partial(blk, opt).inductance(0, 0);
    }
    const std::uint64_t calls =
        run::FaultInjector::global().calls("alloc_fail");
    run::FaultInjector::global().clear();
    const res::Stats s1 = res::Budget::global().stats();
    runs.push_back(Run{l00, s1.degradations - s0.degradations, calls});
  }
  rt::Pool::set_global_threads(0);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    // The decision (degrade exactly once, exactly two reservation
    // attempts) and the answer must not depend on pool width: the
    // reservation points are serial by design.
    EXPECT_EQ(runs[i].degradations, runs[0].degradations)
        << "width case " << i;
    EXPECT_EQ(runs[i].fault_calls, runs[0].fault_calls)
        << "width case " << i;
    EXPECT_NEAR(runs[i].l00, runs[0].l00,
                1e-9 * std::abs(runs[0].l00))
        << "width case " << i;
  }
  EXPECT_EQ(runs[0].degradations, 1u);
  EXPECT_EQ(runs[0].fault_calls, 2u);  // dense probe + hmat reserve
}

// ---- bad_alloc containment -------------------------------------------

TEST_F(ResTest, PoolRethrowsBadAllocAtTheCallSite) {
  // A worker's bad_alloc must surface at the parallel_for call site (where
  // the request boundary can contain it), not kill the worker thread.
  EXPECT_THROW(
      rt::parallel_for(0, 64,
                       [](std::size_t, std::size_t) {
                         throw std::bad_alloc();
                       }),
      std::bad_alloc);
}

struct ThrowingSource final : cli::ProviderSource {
  std::shared_ptr<const core::InductanceProvider> provider(
      const cli::ProviderRequest&, std::ostream&) override {
    throw std::bad_alloc();
  }
};

TEST_F(ResTest, CliContainsBadAllocAsExitCode7) {
  ThrowingSource source;
  std::ostringstream out, err;
  const res::Stats s0 = res::Budget::global().stats();
  const int code = cli::run({"extract", "--structure", "cpw",
                             "--length-um", "400"},
                            out, err, &source);
  const res::Stats s1 = res::Budget::global().stats();
  EXPECT_EQ(code, 7);
  EXPECT_NE(err.str().find("resource-exhausted"), std::string::npos);
  EXPECT_EQ(s1.contained_bad_allocs - s0.contained_bad_allocs, 1u);
}

// ---- CLI surface ------------------------------------------------------

TEST_F(ResTest, CliMemBudgetFlagValidatesAndRefuses) {
  std::ostringstream out1, err1;
  EXPECT_EQ(cli::run({"extract", "--structure", "cpw", "--length-um",
                      "400", "--mem-budget", "-3"},
                     out1, err1),
            2);
  EXPECT_NE(err1.str().find("--mem-budget"), std::string::npos);

  // A 1 MiB budget cannot fit any extract once the first reservation is
  // checked — exit code 7 end to end, with the typed category in stderr.
  std::ostringstream out2, err2;
  run::FaultInjector::global().set_schedule("alloc_fail:1+");
  EXPECT_EQ(cli::run({"extract", "--structure", "cpw", "--length-um",
                      "400"},
                     out2, err2),
            7);
  EXPECT_NE(err2.str().find("resource-exhausted"), std::string::npos);
}

TEST_F(ResTest, HelpDocumentsBudgetFlagAndExitCode) {
  std::ostringstream out, err;
  EXPECT_EQ(cli::run({"help"}, out, err), 0);
  EXPECT_NE(out.str().find("--mem-budget"), std::string::npos);
  EXPECT_NE(out.str().find("resource-exhausted"), std::string::npos);
}

TEST_F(ResTest, ExitCodeAndLabelMapping) {
  EXPECT_EQ(diag::exit_code(diag::Category::kResourceExhausted), 7);
  EXPECT_STREQ(diag::to_string(diag::Category::kResourceExhausted),
               "resource-exhausted");
  EXPECT_STREQ(serve::status_label(7), "resource-exhausted");
}

// ---- Serve admission + warm store ------------------------------------

TEST_F(ResTest, AdmissionQueueRefusesOverBudgetCost) {
  res::Budget::global().set_limit(4096);
  serve::AdmissionQueue q(1, 1);
  run::CancelToken token;
  EXPECT_EQ(q.enter(token, 1 << 20),
            serve::AdmissionQueue::Admission::kRefused);
  EXPECT_EQ(q.stats().refused, 1u);
  EXPECT_EQ(q.stats().admitted, 0u);
  // Zero-cost (non-extract) requests are exempt from the cost gate.
  EXPECT_EQ(q.enter(token, 0),
            serve::AdmissionQueue::Admission::kAdmitted);
  q.leave();
  res::Budget::global().set_limit(0);
}

TEST_F(ResTest, EstimateRequestBytesCostsExtractOnly) {
  EXPECT_GT(cli::estimate_request_bytes({"extract", "--structure", "cpw",
                                         "--length-um", "400"}),
            0u);
  EXPECT_EQ(cli::estimate_request_bytes({"help"}), 0u);
  EXPECT_EQ(cli::estimate_request_bytes({"extract", "oops"}), 0u);
}

TEST_F(ResTest, WarmStoreByteBudgetEvictsButKeepsOne) {
  const ScratchDir dir("rlcx_res_warm");
  res::Budget& b = res::Budget::global();
  const std::uint64_t base = b.tracked();
  {
    // A 1-byte cap: every insert is over budget, yet one model must stay
    // resident (evicting the only entry would just rebuild it next time).
    serve::WarmTableStore store(dir.path, /*max_tables=*/8,
                                /*max_bytes=*/1);
    cli::ProviderRequest req;
    req.tech = &tech();
    req.layer = 6;
    req.planes = geom::PlaneConfig::kNone;
    req.grid = tiny_grid();
    req.options = meshed_options(1, 1);
    std::ostringstream sink;
    store.provider(req, sink);
    req.grid = tiny_grid(2.0);  // a different content address
    store.provider(req, sink);
    const serve::WarmTableStore::Stats s = store.stats();
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.resident, 1u);
    EXPECT_GT(s.resident_bytes, 0u);
    const std::vector<serve::WarmTableStore::EntryInfo> entries =
        store.entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].bytes, s.resident_bytes);
    EXPECT_FALSE(entries[0].id.empty());
    // The resident entry is charged to the budget's tracked counter.
    EXPECT_GE(b.tracked(), base + s.resident_bytes);
  }
  // Destroying the store returns its charge.
  EXPECT_EQ(b.tracked(), base);
}

}  // namespace
}  // namespace rlcx
