// Tests for the general PEEC network (MNA) solver.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/builders.h"
#include "numeric/units.h"
#include "peec/partial_inductance.h"
#include "solver/block_solver.h"
#include "solver/network.h"

namespace rlcx::solver {
namespace {

using geom::Technology;
using units::um;

const Technology& tech() {
  static const Technology t = Technology::generic_025um();
  return t;
}

peec::Bar bar_at(double x_left, double w, double l, double y0 = 0.0) {
  peec::Bar b;
  b.axis = peec::Axis::kY;
  b.a_min = y0;
  b.length = l;
  b.t_min = x_left;
  b.t_width = w;
  b.z_min = tech().layer(6).z_bottom;
  b.z_thick = tech().layer(6).thickness;
  return b;
}

constexpr double kRho = 2e-8;
constexpr double kLowF = 1e6;

TEST(Network, TwoWireLoopMatchesAnalyticCombination) {
  // Go and return bars: Zloop = R1 + R2 + jw (L1 + L2 - 2 M).
  Network net;
  const int a = net.add_node();
  const int c = net.add_node();
  const int b = net.add_node();
  const peec::Bar go = bar_at(0.0, um(4), um(1000));
  const peec::Bar ret = bar_at(um(10), um(4), um(1000));
  peec::MeshOptions m1;
  m1.nw = 1;
  m1.nt = 1;
  net.add_segment(a, c, go, kRho, m1, true);
  net.add_segment(c, b, ret, kRho, m1, false);  // current flows back (-y)

  const auto lz = net.loop_impedance(a, b, kLowF);
  const double l1 = peec::self_partial(go);
  const double l2 = peec::self_partial(ret);
  const double m = peec::mutual_partial(go, ret);
  const double expect_l = l1 + l2 - 2.0 * m;
  EXPECT_NEAR(lz.inductance, expect_l, 1e-6 * expect_l);
  const double expect_r = 2.0 * peec::bar_resistance(go, kRho);
  EXPECT_NEAR(lz.resistance, expect_r, 1e-6 * expect_r);
}

TEST(Network, MatchesBlockSolverOnGsg) {
  // The same G-S-G structure through the MNA path and through the Schur
  // reduction of extract_loop must agree to solver precision.
  const auto blk = geom::coplanar_waveguide(tech(), 6, um(1000), um(10),
                                            um(5), um(1));
  SolveOptions opt;
  opt.frequency = kLowF;
  opt.auto_mesh = false;
  opt.mesh.nw = 2;
  opt.mesh.nt = 2;
  const LoopResult ref = extract_loop(blk, opt);

  Network net;
  const int sig_near = net.add_node();
  const int gnd_near = net.add_node();
  const int far = net.add_node();
  for (std::size_t i = 0; i < blk.size(); ++i) {
    const geom::Trace& t = blk.trace(i);
    const peec::Bar bar = bar_at(t.x_left(), t.width, blk.length());
    const int from = t.role == geom::TraceRole::kSignal ? sig_near : gnd_near;
    net.add_segment(from, far, bar, tech().layer(6).rho, opt.mesh);
  }
  const auto lz = net.loop_impedance(sig_near, gnd_near, kLowF);
  EXPECT_NEAR(lz.inductance, ref.inductance(0, 0),
              1e-6 * ref.inductance(0, 0));
  EXPECT_NEAR(lz.resistance, ref.resistance(0, 0),
              1e-6 * ref.resistance(0, 0));
}

TEST(Network, SplittingSegmentsIsInvariant) {
  // Cutting every conductor at its midpoint must not change the loop
  // impedance: partial inductance decomposes exactly over series segments.
  peec::MeshOptions m1;
  m1.nw = 1;
  m1.nt = 1;

  auto build = [&](bool split) {
    Network net;
    const int a = net.add_node();
    const int b = net.add_node();
    const double l = um(800);
    if (!split) {
      const int far = net.add_node();
      net.add_segment(a, far, bar_at(0.0, um(2), l), kRho, m1, true);
      net.add_segment(far, b, bar_at(um(8), um(2), l), kRho, m1, false);
    } else {
      const int mid_s = net.add_node();
      const int far = net.add_node();
      const int mid_g = net.add_node();
      net.add_segment(a, mid_s, bar_at(0.0, um(2), l / 2), kRho, m1, true);
      net.add_segment(mid_s, far, bar_at(0.0, um(2), l / 2, l / 2), kRho, m1,
                      true);
      net.add_segment(far, mid_g, bar_at(um(8), um(2), l / 2, l / 2), kRho,
                      m1, false);
      net.add_segment(mid_g, b, bar_at(um(8), um(2), l / 2), kRho, m1, false);
    }
    return net.loop_impedance(a, b, kLowF);
  };

  const auto whole = build(false);
  const auto split = build(true);
  EXPECT_NEAR(split.inductance, whole.inductance, 1e-6 * whole.inductance);
  EXPECT_NEAR(split.resistance, whole.resistance, 1e-6 * whole.resistance);
}

TEST(Network, TieMergesNodes) {
  Network net;
  const int a = net.add_node();
  const int b = net.add_node();
  const int c = net.add_node();
  const int d = net.add_node();
  peec::MeshOptions m1;
  m1.nw = 1;
  m1.nt = 1;
  net.add_segment(a, c, bar_at(0.0, um(2), um(500)), kRho, m1, true);
  net.add_segment(d, b, bar_at(um(8), um(2), um(500)), kRho, m1, false);
  net.tie(c, d);  // join the far ends
  const auto lz = net.loop_impedance(a, b, kLowF);
  EXPECT_GT(lz.inductance, 0.0);
  EXPECT_GT(lz.resistance, 0.0);
}

TEST(Network, ParallelReturnHalvesReturnContribution) {
  // One signal with two symmetric returns: the return resistance halves.
  peec::MeshOptions m1;
  m1.nw = 1;
  m1.nt = 1;

  Network net;
  const int a = net.add_node();
  const int b = net.add_node();
  const int far = net.add_node();
  net.add_segment(a, far, bar_at(-um(1), um(2), um(1000)), kRho, m1, true);
  net.add_segment(far, b, bar_at(-um(7), um(2), um(1000)), kRho, m1, false);
  net.add_segment(far, b, bar_at(um(5), um(2), um(1000)), kRho, m1, false);
  const auto lz = net.loop_impedance(a, b, kLowF);
  const double r1 = peec::bar_resistance(bar_at(0, um(2), um(1000)), kRho);
  EXPECT_NEAR(lz.resistance, r1 + 0.5 * r1, 1e-6 * r1);
}

TEST(Network, MultiportSymmetric) {
  peec::MeshOptions m1;
  m1.nw = 1;
  m1.nt = 1;
  Network net;
  const int p1 = net.add_node();
  const int p2 = net.add_node();
  const int g = net.add_node();
  const int far = net.add_node();
  net.add_segment(p1, far, bar_at(0.0, um(2), um(600)), kRho, m1);
  net.add_segment(p2, far, bar_at(um(6), um(2), um(600)), kRho, m1);
  net.add_segment(g, far, bar_at(um(12), um(2), um(600)), kRho, m1);
  const auto z = net.port_impedance({{p1, g}, {p2, g}}, kLowF);
  EXPECT_NEAR(z(0, 1).imag(), z(1, 0).imag(),
              1e-9 * std::abs(z(0, 0).imag()));
  EXPECT_GT(z(0, 0).imag(), 0.0);
  EXPECT_GT(z(1, 1).imag(), 0.0);
}

TEST(Network, ErrorPaths) {
  Network net;
  EXPECT_THROW(net.loop_impedance(0, 1, kLowF), std::out_of_range);
  const int a = net.add_node();
  const int b = net.add_node();
  peec::MeshOptions m1;
  EXPECT_THROW(net.add_segment(a, a, bar_at(0, um(2), um(10)), kRho, m1),
               std::invalid_argument);
  net.add_segment(a, b, bar_at(0, um(2), um(10)), kRho, m1);
  EXPECT_THROW(net.loop_impedance(a, a, kLowF), std::invalid_argument);
  EXPECT_THROW(net.loop_impedance(a, b, 0.0), std::invalid_argument);
  EXPECT_THROW(net.port_impedance({}, kLowF), std::invalid_argument);
}

}  // namespace
}  // namespace rlcx::solver
