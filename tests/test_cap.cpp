// Tests for the capacitance/resistance models and the block extractor.
#include <gtest/gtest.h>

#include <cmath>

#include "cap/extractor.h"
#include "cap/models.h"
#include "geom/builders.h"
#include "numeric/units.h"

namespace rlcx::cap {
namespace {

using geom::Technology;
using units::um;

const Technology& tech() {
  static const Technology t = Technology::generic_025um();
  return t;
}

TEST(CapModels, ParallelPlateKnownValue) {
  // 10 um wide, 1 um below a plane in SiO2: 0.345 fF/um.
  const double c = parallel_plate_cul(um(10), um(1), 3.9);
  EXPECT_NEAR(c, 3.453e-10, 1e-12);
}

TEST(CapModels, SakuraiReducesToAreaPlusFringe) {
  const double w = um(3), t = um(2), h = um(1);
  const double total = sakurai_total_cul(w, t, h, 3.9);
  const double area = 1.15 * parallel_plate_cul(w, h, 3.9);
  EXPECT_GT(total, area);  // fringe is positive
  // C/eps = 1.15 w/h + 2.8 (t/h)^0.222 at w/h=3, t/h=2.
  const double expected =
      kEps0 * 3.9 * (1.15 * 3.0 + 2.8 * std::pow(2.0, 0.222));
  EXPECT_NEAR(total, expected, 1e-15);
}

TEST(CapModels, SakuraiMonotonicities) {
  const double base = sakurai_total_cul(um(3), um(2), um(1), 3.9);
  EXPECT_GT(sakurai_total_cul(um(6), um(2), um(1), 3.9), base);  // wider
  EXPECT_LT(sakurai_total_cul(um(3), um(2), um(2), 3.9), base);  // higher
}

TEST(CapModels, CouplingDecaysWithSpacing) {
  double prev = sakurai_coupling_cul(um(3), um(2), um(1), um(0.5), 3.9);
  for (double s = 1.0; s <= 8.0; s *= 2.0) {
    const double c = sakurai_coupling_cul(um(3), um(2), um(1), um(s), 3.9);
    EXPECT_LT(c, prev);
    EXPECT_GT(c, 0.0);
    prev = c;
  }
  // The published exponent: C ~ (s/h)^-1.34.
  const double c1 = sakurai_coupling_cul(um(3), um(2), um(1), um(1), 3.9);
  const double c2 = sakurai_coupling_cul(um(3), um(2), um(1), um(2), 3.9);
  EXPECT_NEAR(c1 / c2, std::pow(2.0, 1.34), 1e-9);
}

TEST(CapModels, CpwKnownSymmetryPoint) {
  // k = w/(w+2s) = 1/sqrt(2) makes K(k)/K(k') = 1, so C = 4 eps0 eps_eff.
  const double s = um(1);
  const double w = 2.0 * s / (std::numbers::sqrt2 - 1.0);
  const double c = cpw_total_cul(w, s, 3.9);
  EXPECT_NEAR(c, 4.0 * kEps0 * 0.5 * (3.9 + 1.0), 1e-4 * c);
}

TEST(CapModels, CpwMonotonicInSpacing) {
  const double c1 = cpw_total_cul(um(10), um(1), 3.9);
  const double c2 = cpw_total_cul(um(10), um(2), 3.9);
  EXPECT_GT(c1, c2);
}

TEST(CapModels, CoplanarCouplingSidewallDominatedWhenClose) {
  const double close = coplanar_coupling_cul(um(2), um(0.5), 3.9);
  const double far = coplanar_coupling_cul(um(2), um(4), 3.9);
  EXPECT_GT(close, far);
  EXPECT_GT(close, kEps0 * 3.9 * (um(2) / um(0.5)));  // at least the plate
}

TEST(CapModels, ResistanceValues) {
  // Figure 1 signal wire: 10 um x 2 um x 6000 um of 2e-8 ohm*m copper: 6 ohm.
  EXPECT_NEAR(segment_resistance(um(10), um(2), um(6000), 2e-8), 6.0, 1e-9);
  EXPECT_NEAR(resistance_pul(um(10), um(2), 2e-8), 1000.0, 1e-9);
}

TEST(CapModels, RejectBadArguments) {
  EXPECT_THROW(parallel_plate_cul(0.0, um(1), 3.9), std::invalid_argument);
  EXPECT_THROW(sakurai_total_cul(um(1), um(1), -um(1), 3.9),
               std::invalid_argument);
  EXPECT_THROW(sakurai_coupling_cul(um(1), um(1), um(1), 0.0, 3.9),
               std::invalid_argument);
  EXPECT_THROW(cpw_total_cul(um(1), um(1), 0.0), std::invalid_argument);
  EXPECT_THROW(resistance_pul(um(1), 0.0, 2e-8), std::invalid_argument);
  EXPECT_THROW(segment_resistance(um(1), um(1), 0.0, 2e-8),
               std::invalid_argument);
}

TEST(Extractor, GroundHeightPicksPlaneOrLayerBelow) {
  const auto ms = geom::microstrip(tech(), 6, um(100), um(4), um(4), um(1));
  EXPECT_NEAR(ground_height(ms), tech().dielectric_gap(4, 6), 1e-15);
  const auto cpw =
      geom::coplanar_waveguide(tech(), 6, um(100), um(4), um(4), um(1));
  EXPECT_NEAR(ground_height(cpw), tech().dielectric_gap(5, 6), 1e-15);
}

TEST(Extractor, GsgStructureShapes) {
  const auto blk =
      geom::coplanar_waveguide(tech(), 6, um(1000), um(10), um(5), um(1));
  const CapResult r = extract_cap(blk);
  ASSERT_EQ(r.cg.size(), 3u);
  ASSERT_EQ(r.cc.size(), 2u);
  for (double c : r.cg) EXPECT_GT(c, 0.0);
  for (double c : r.cc) EXPECT_GT(c, 0.0);
  // Symmetric structure: equal ground traces, equal couplings.
  EXPECT_NEAR(r.cg[0], r.cg[2], 1e-9 * r.cg[0]);
  EXPECT_NEAR(r.cc[0], r.cc[1], 1e-9 * r.cc[0]);
  // total() adds both neighbours for the middle trace.
  EXPECT_NEAR(r.total(1), r.cg[1] + r.cc[0] + r.cc[1], 1e-18);
}

TEST(Extractor, NeighbourShieldingReducesGroundCap) {
  const auto lone = geom::single_trace(tech(), 6, um(1000), um(4));
  const auto crowded = geom::uniform_array(tech(), 6, um(1000), 3, um(4),
                                           um(0.5));
  const double cg_lone = extract_cap(lone).cg[0];
  const double cg_mid = extract_cap(crowded).cg[1];
  EXPECT_LT(cg_mid, cg_lone);
}

TEST(Extractor, CouplingGrowsAsSpacingShrinks) {
  const auto wide =
      geom::coplanar_waveguide(tech(), 6, um(1000), um(10), um(5), um(2));
  const auto tight =
      geom::coplanar_waveguide(tech(), 6, um(1000), um(10), um(5), um(0.5));
  EXPECT_GT(extract_cap(tight).cc[0], extract_cap(wide).cc[0]);
}

TEST(Extractor, StriplineSeesBothPlanes) {
  const auto ms = geom::microstrip(tech(), 6, um(1000), um(4), um(4), um(1));
  const auto sl = geom::stripline(tech(), 6, um(1000), um(4), um(4), um(1));
  EXPECT_GT(extract_cap(sl).cg[1], extract_cap(ms).cg[1]);
}

TEST(Extractor, FigureOneMagnitudesAreRealistic) {
  // The 6000 um coplanar clock net of Figure 1: total signal capacitance
  // should land in the ~0.1-0.5 fF/um band typical of wide clock wiring.
  const auto blk =
      geom::coplanar_waveguide(tech(), 6, um(6000), um(10), um(5), um(1));
  const CapResult r = extract_cap(blk);
  const double total_ff_per_um = units::to_ff(r.total(1)) / 1e6;
  EXPECT_GT(total_ff_per_um, 0.05);
  EXPECT_LT(total_ff_per_um, 1.0);
}

}  // namespace
}  // namespace rlcx::cap
