// Tests for the persistent table cache: content-addressed keys, hit/miss
// behaviour (a hit performs zero PEEC solves), atomic binary entries and
// the stat/list/purge maintenance surface.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "core/table_cache.h"
#include "diag/error.h"
#include "diag/warnings.h"
#include "geom/technology.h"
#include "numeric/units.h"
#include "run/fault_injection.h"

namespace rlcx::core {
namespace {

namespace fs = std::filesystem;
using units::um;

// A fresh cache directory per test, removed on destruction.
struct ScratchDir {
  std::string path;
  explicit ScratchDir(const std::string& name)
      : path((fs::path(::testing::TempDir()) / name).string()) {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// The smallest legal grid (2 points per axis -> 16 two-trace solves) over
// short narrow traces keeps each build fast.
TableGrid tiny_grid() {
  TableGrid g;
  g.widths = {um(2), um(8)};
  g.spacings = {um(1), um(4)};
  g.lengths = {um(200), um(1000)};
  return g;
}

solver::SolveOptions fast_options() {
  solver::SolveOptions opt;
  opt.frequency = 1e9;
  opt.auto_mesh = false;
  opt.mesh.nw = 1;
  opt.mesh.nt = 1;
  return opt;
}

TEST(TableCache, HitOnIdenticalInputsPerformsZeroSolves) {
  const ScratchDir dir("rlcx_cache_hit");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();

  TableCache cold(dir.path);
  reset_table_build_solve_count();
  const InductanceTables built = build_tables_cached(
      tech, 6, geom::PlaneConfig::kNone, grid, opt, cold);
  EXPECT_EQ(cold.stats().misses, 1u);
  EXPECT_EQ(cold.stats().hits, 0u);
  EXPECT_GT(cold.stats().bytes_written, 0u);
  EXPECT_EQ(table_build_solve_count(), 16u);  // 2*2*2*2 grid points

  // A separate cache instance (a new process, in effect) on the same
  // directory with identical inputs must answer from disk: zero solves.
  TableCache warm(dir.path);
  reset_table_build_solve_count();
  const InductanceTables cached = build_tables_cached(
      tech, 6, geom::PlaneConfig::kNone, grid, opt, warm);
  EXPECT_EQ(table_build_solve_count(), 0u);
  EXPECT_EQ(warm.stats().hits, 1u);
  EXPECT_EQ(warm.stats().misses, 0u);
  EXPECT_GT(warm.stats().bytes_read, 0u);

  // The binary round trip is bit-exact, so lookups match the in-memory
  // build exactly — on-grid and interpolated alike.
  EXPECT_EQ(cached.frequency, built.frequency);
  EXPECT_EQ(cached.self.values(), built.self.values());
  EXPECT_EQ(cached.mutual.values(), built.mutual.values());
  const std::vector<double> q{um(4), um(5), um(2), um(700)};
  EXPECT_EQ(cached.mutual.lookup(q), built.mutual.lookup(q));
  EXPECT_EQ(cached.self.lookup({um(4), um(700)}),
            built.self.lookup({um(4), um(700)}));
}

TEST(TableCache, MissOnChangedFrequency) {
  const ScratchDir dir("rlcx_cache_freq");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  solver::SolveOptions opt = fast_options();

  TableCache cache(dir.path);
  build_tables_cached(tech, 6, geom::PlaneConfig::kNone, grid, opt, cache);
  opt.frequency = 2e9;  // a different significant frequency: new key
  reset_table_build_solve_count();
  build_tables_cached(tech, 6, geom::PlaneConfig::kNone, grid, opt, cache);
  EXPECT_EQ(table_build_solve_count(), 16u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.list().size(), 2u);
}

TEST(TableCache, KeyTextCoversEveryInput) {
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();
  const std::string base =
      TableCache::key_text(tech, 6, geom::PlaneConfig::kNone, grid, opt);

  EXPECT_EQ(base,
            TableCache::key_text(tech, 6, geom::PlaneConfig::kNone, grid,
                                 opt));
  EXPECT_NE(base, TableCache::key_text(tech, 7, geom::PlaneConfig::kNone,
                                       grid, opt));
  EXPECT_NE(base, TableCache::key_text(tech, 6, geom::PlaneConfig::kBelow,
                                       grid, opt));

  TableGrid grid2 = grid;
  grid2.lengths.push_back(um(2000));
  EXPECT_NE(base, TableCache::key_text(tech, 6, geom::PlaneConfig::kNone,
                                       grid2, opt));

  solver::SolveOptions opt2 = opt;
  opt2.frequency = 2e9;
  EXPECT_NE(base, TableCache::key_text(tech, 6, geom::PlaneConfig::kNone,
                                       grid, opt2));

  // A different layer stack (here: resistivity at temperature) must
  // repartition the cache even with identical geometry requests.
  const geom::Technology hot = tech.at_temperature(100.0);
  EXPECT_NE(base, TableCache::key_text(hot, 6, geom::PlaneConfig::kNone,
                                       grid, opt));
}

TEST(TableCache, KeyHashIsStableFnv1a64) {
  // Pinned so entry file names stay valid across builds and platforms.
  EXPECT_EQ(TableCache::key_hash(""), 14695981039346656037ull);
  EXPECT_EQ(TableCache::key_hash("abc"), 0xe71fa2190541574bull);
}

TEST(TableCache, CorruptEntryFailsLoudlyUnderStrictPolicy) {
  const ScratchDir dir("rlcx_cache_corrupt");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();

  TableCache cache(dir.path, CacheRecoveryPolicy::kStrict);
  const std::string key =
      TableCache::key_text(tech, 6, geom::PlaneConfig::kNone, grid, opt);
  cache.store(key, build_tables(tech, 6, geom::PlaneConfig::kNone, grid,
                                opt));

  // Overwrite the entry with garbage: strict loading must throw, not
  // silently serve or rebuild.
  for (const fs::directory_entry& de : fs::directory_iterator(dir.path))
    if (de.path().extension() == ".tbl") {
      std::ofstream os(de.path(), std::ios::binary | std::ios::trunc);
      os << "RLXBgarbage";
    }
  EXPECT_THROW(cache.load(key), std::runtime_error);
  EXPECT_THROW(cache.load(key), rlcx::diag::CacheError);
  // And a corrupt entry is not listed as well-formed.
  EXPECT_TRUE(cache.list().empty());
}

TEST(TableCache, CorruptEntryIsQuarantinedUnderRecoverPolicy) {
  const ScratchDir dir("rlcx_cache_recover");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();

  TableCache cache(dir.path);  // kRecover is the default
  const std::string key =
      TableCache::key_text(tech, 6, geom::PlaneConfig::kNone, grid, opt);
  cache.store(key, build_tables(tech, 6, geom::PlaneConfig::kNone, grid,
                                opt));
  for (const fs::directory_entry& de : fs::directory_iterator(dir.path))
    if (de.path().extension() == ".tbl") {
      std::ofstream os(de.path(), std::ios::binary | std::ios::trunc);
      os << "RLXBgarbage";
    }

  // The bad entry reads as a miss, a warning is emitted on the cache
  // channel, and the bytes are preserved under *.quarantine.
  std::vector<rlcx::diag::Warning> warnings;
  {
    rlcx::diag::ScopedWarningHandler capture(
        [&](const rlcx::diag::Warning& w) { warnings.push_back(w); });
    EXPECT_FALSE(cache.load(key).has_value());
  }
  EXPECT_EQ(cache.stats().quarantined, 1u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].category, rlcx::diag::Category::kCache);
  std::size_t quarantined_files = 0;
  for (const fs::directory_entry& de : fs::directory_iterator(dir.path))
    if (de.path().extension() == ".quarantine") ++quarantined_files;
  EXPECT_EQ(quarantined_files, 2u);  // entry + key sidecar

  // The slot is free again: a rebuild stores and then hits cleanly.
  build_tables_cached(tech, 6, geom::PlaneConfig::kNone, grid, opt, cache);
  EXPECT_TRUE(cache.load(key).has_value());

  // purge() sweeps quarantined files along with live entries.
  EXPECT_EQ(cache.purge(), 1u);
  EXPECT_TRUE(fs::is_empty(dir.path));
}

TEST(TableCache, SidecarMismatchIsTreatedAsMiss) {
  const ScratchDir dir("rlcx_cache_sidecar");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();

  TableCache cache(dir.path);
  const std::string key =
      TableCache::key_text(tech, 6, geom::PlaneConfig::kNone, grid, opt);
  cache.store(key, build_tables(tech, 6, geom::PlaneConfig::kNone, grid,
                                opt));
  for (const fs::directory_entry& de : fs::directory_iterator(dir.path))
    if (de.path().extension() == ".key") {
      std::ofstream os(de.path(), std::ios::trunc);
      os << "some other key text\n";
    }
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TableCache, ListReportsEntriesAndPurgeRemovesThem) {
  const ScratchDir dir("rlcx_cache_list");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();

  TableCache cache(dir.path);
  build_tables_cached(tech, 6, geom::PlaneConfig::kNone, grid, opt, cache);
  const std::vector<TableCache::Entry> entries = cache.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].id.size(), 16u);
  EXPECT_EQ(entries[0].layer, 6);
  EXPECT_EQ(entries[0].planes, geom::PlaneConfig::kNone);
  EXPECT_EQ(entries[0].frequency, opt.frequency);
  EXPECT_GT(entries[0].bytes, 0u);

  EXPECT_EQ(cache.purge(), 1u);
  EXPECT_TRUE(cache.list().empty());
  // Purge also removes the key sidecars, leaving the directory empty.
  EXPECT_EQ(std::distance(fs::directory_iterator(dir.path),
                          fs::directory_iterator()), 0);
}

TEST(TableCache, RejectsUnusableDirectory) {
  EXPECT_THROW(TableCache(""), std::invalid_argument);
}

TEST(TableCache, ConcurrentSameKeyStoresNeverTearTheEntry) {
  const ScratchDir dir("rlcx_cache_race");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();

  TableCache cache(dir.path);
  const InductanceTables built =
      build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt);
  const std::string key =
      TableCache::key_text(tech, 6, geom::PlaneConfig::kNone, grid, opt);

  // Eight writers hammer the same key.  Pre-fix, same-process writers
  // shared a pid-named temp file and could rename each other's
  // half-written bytes into place; now every store() stages uniquely.
  std::vector<std::thread> writers;
  for (int i = 0; i < 8; ++i)
    writers.emplace_back([&] {
      for (int r = 0; r < 5; ++r) cache.store(key, built);
    });
  for (std::thread& w : writers) w.join();

  TableCache reader(dir.path, CacheRecoveryPolicy::kStrict);
  const std::optional<InductanceTables> loaded = reader.load(key);
  ASSERT_TRUE(loaded.has_value());  // strict: a torn entry would throw
  ASSERT_EQ(loaded->mutual.values().size(), built.mutual.values().size());
  for (std::size_t i = 0; i < built.mutual.values().size(); ++i)
    EXPECT_EQ(loaded->mutual.values()[i], built.mutual.values()[i]);

  // Every one of the 40 stores was counted, and no staging file survives.
  EXPECT_EQ(cache.stats().bytes_written % 40u, 0u);
  EXPECT_GT(cache.stats().bytes_written, 0u);
  for (const fs::directory_entry& de : fs::directory_iterator(dir.path))
    EXPECT_EQ(de.path().filename().string().find(".tmp."),
              std::string::npos)
        << de.path();
}

// --- store() retry ladder, driven by the deterministic fault injector ---

struct InjectorReset {
  ~InjectorReset() { run::FaultInjector::global().clear(); }
};

TEST(TableCacheRetry, TransientWriteFailureIsRetriedAndCounted) {
  InjectorReset reset;
  const ScratchDir dir("rlcx_cache_retry");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();
  TableCache cache(dir.path);
  const InductanceTables built =
      build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt);
  const std::string key =
      TableCache::key_text(tech, 6, geom::PlaneConfig::kNone, grid, opt);

  // First staging write fails once; the retry succeeds silently.
  run::FaultInjector::global().set_schedule("cache_write:1");
  EXPECT_TRUE(cache.store(key, built));
  EXPECT_EQ(cache.stats().write_retries, 1u);
  EXPECT_EQ(cache.stats().stores_dropped, 0u);

  // The entry is whole: a strict reader accepts it.
  TableCache reader(dir.path, CacheRecoveryPolicy::kStrict);
  EXPECT_TRUE(reader.load(key).has_value());
}

TEST(TableCacheRetry, PersistentFailureDegradesToWarnAndSkipUnderRecover) {
  InjectorReset reset;
  const ScratchDir dir("rlcx_cache_retry_drop");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();
  TableCache cache(dir.path);  // kRecover (default)
  const InductanceTables built =
      build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt);
  const std::string key =
      TableCache::key_text(tech, 6, geom::PlaneConfig::kNone, grid, opt);

  std::vector<diag::Warning> warnings;
  const diag::ScopedWarningHandler handler(
      [&](const diag::Warning& w) { warnings.push_back(w); });
  run::FaultInjector::global().set_schedule("cache_write:1+");  // a full disk
  EXPECT_FALSE(cache.store(key, built));
  EXPECT_EQ(cache.stats().write_retries, 2u);  // 3 attempts = 2 retries
  EXPECT_EQ(cache.stats().stores_dropped, 1u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].category, diag::Category::kCache);
  EXPECT_NE(warnings[0].message.find("re-characterised"), std::string::npos);

  run::FaultInjector::global().clear();
  EXPECT_FALSE(cache.load(key).has_value());  // nothing was published
}

TEST(TableCacheRetry, PersistentFailureThrowsUnderStrict) {
  InjectorReset reset;
  const ScratchDir dir("rlcx_cache_retry_strict");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();
  TableCache cache(dir.path, CacheRecoveryPolicy::kStrict);
  const InductanceTables built =
      build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt);
  const std::string key =
      TableCache::key_text(tech, 6, geom::PlaneConfig::kNone, grid, opt);

  run::FaultInjector::global().set_schedule("cache_write:1+");
  EXPECT_THROW(cache.store(key, built), diag::CacheError);
  EXPECT_EQ(cache.stats().stores_dropped, 1u);
}

TEST(TableCacheRetry, InjectedCorruptReadQuarantinesUnderRecover) {
  InjectorReset reset;
  const ScratchDir dir("rlcx_cache_read_inject");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();
  TableCache cache(dir.path);
  const InductanceTables built =
      build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt);
  const std::string key =
      TableCache::key_text(tech, 6, geom::PlaneConfig::kNone, grid, opt);
  ASSERT_TRUE(cache.store(key, built));

  std::vector<diag::Warning> warnings;
  const diag::ScopedWarningHandler handler(
      [&](const diag::Warning& w) { warnings.push_back(w); });
  run::FaultInjector::global().set_schedule("cache_read:1");
  EXPECT_FALSE(cache.load(key).has_value());  // treated as corrupt -> miss
  EXPECT_EQ(cache.stats().quarantined, 1u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].message.find("quarantined"), std::string::npos);
}

// --- crash-consistency: new staged-write fault sites + the startup sweep

TEST(TableCacheRetry, ShortWriteAndStagedFaultsAreAbsorbedByTheRetry) {
  InjectorReset reset;
  const ScratchDir dir("rlcx_cache_staged_retry");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();
  TableCache cache(dir.path);
  const InductanceTables built =
      build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt);
  const std::string key =
      TableCache::key_text(tech, 6, geom::PlaneConfig::kNone, grid, opt);

  // A torn tmp write, then a failure on the very rename boundary: both
  // transient, both retried, and the published entry is still whole.
  // Attempt 1 dies in the tmp write (so the staged site is never
  // reached); attempt 2 writes whole but fails on the rename boundary;
  // attempt 3 lands.
  run::FaultInjector::global().set_schedule(
      "io_short_write:1,cache_staged:1");
  EXPECT_TRUE(cache.store(key, built));
  EXPECT_EQ(cache.stats().write_retries, 2u);
  EXPECT_GT(cache.stats().fsyncs, 0u);
  TableCache reader(dir.path, CacheRecoveryPolicy::kStrict);
  EXPECT_TRUE(reader.load(key).has_value());
}

TEST(TableCacheRetry, PersistentEnospcDegradesPerPolicy) {
  InjectorReset reset;
  const ScratchDir dir("rlcx_cache_enospc");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();
  const InductanceTables built =
      build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt);
  const std::string key =
      TableCache::key_text(tech, 6, geom::PlaneConfig::kNone, grid, opt);

  run::FaultInjector::global().set_schedule("io_enospc:1+");  // disk full
  {
    std::vector<diag::Warning> warnings;
    diag::ScopedWarningHandler capture(
        [&](const diag::Warning& w) { warnings.push_back(w); });
    TableCache cache(dir.path);
    EXPECT_FALSE(cache.store(key, built));
    EXPECT_EQ(cache.stats().stores_dropped, 1u);
    ASSERT_FALSE(warnings.empty());
  }
  TableCache strict(dir.path, CacheRecoveryPolicy::kStrict);
  EXPECT_THROW(strict.store(key, built), diag::CacheError);
}

TEST(TableCacheSweep, OrphanedStagingFilesAreRemovedAtOpen) {
  const ScratchDir dir("rlcx_cache_sweep_tmp");
  fs::create_directories(dir.path);
  {
    std::ofstream os(dir.path + "/0123456789abcdef.tbl.tmp.1234");
    os << "half a staged entry from a killed writer";
  }
  std::vector<diag::Warning> warnings;
  diag::ScopedWarningHandler capture(
      [&](const diag::Warning& w) { warnings.push_back(w); });
  TableCache cache(dir.path);
  EXPECT_EQ(cache.stats().tmp_swept, 1u);
  EXPECT_EQ(cache.stats().quarantined_at_startup, 0u);
  EXPECT_FALSE(fs::exists(dir.path + "/0123456789abcdef.tbl.tmp.1234"));
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings[0].message.find("staging"), std::string::npos);
}

TEST(TableCacheSweep, TornEntriesAreQuarantinedAtOpen) {
  const ScratchDir dir("rlcx_cache_sweep_torn");
  fs::create_directories(dir.path);
  {
    // Too small and without the RLXB magic: the signature of a torn
    // rename after power loss.
    std::ofstream os(dir.path + "/0123456789abcdef.tbl",
                     std::ios::binary);
    os << "RLX";
  }
  {
    // A healthy-looking foreign file must be left alone: not hex-named.
    std::ofstream os(dir.path + "/README.tbl");
    os << "not an entry";
  }
  std::vector<diag::Warning> warnings;
  diag::ScopedWarningHandler capture(
      [&](const diag::Warning& w) { warnings.push_back(w); });
  TableCache cache(dir.path);
  EXPECT_EQ(cache.stats().quarantined_at_startup, 1u);
  EXPECT_FALSE(fs::exists(dir.path + "/0123456789abcdef.tbl"));
  EXPECT_TRUE(fs::exists(dir.path + "/README.tbl"));
  ASSERT_FALSE(warnings.empty());
}

TEST(TableCacheSweep, TornEntriesFailLoudlyAtOpenUnderStrict) {
  const ScratchDir dir("rlcx_cache_sweep_strict");
  fs::create_directories(dir.path);
  {
    std::ofstream os(dir.path + "/0123456789abcdef.tbl",
                     std::ios::binary);
    os << "RLX";
  }
  EXPECT_THROW(TableCache(dir.path, CacheRecoveryPolicy::kStrict),
               diag::CacheError);
}

TEST(TableCacheSweep, HealthyEntriesSurviveTheSweep) {
  const ScratchDir dir("rlcx_cache_sweep_ok");
  const geom::Technology tech = geom::Technology::generic_025um();
  const TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();
  const std::string key =
      TableCache::key_text(tech, 6, geom::PlaneConfig::kNone, grid, opt);
  {
    TableCache cache(dir.path);
    cache.store(key, build_tables(tech, 6, geom::PlaneConfig::kNone, grid,
                                  opt));
    EXPECT_GE(cache.stats().fsyncs, 2u);  // staged file + directory
  }
  TableCache reopened(dir.path);
  EXPECT_EQ(reopened.stats().quarantined_at_startup, 0u);
  EXPECT_EQ(reopened.stats().tmp_swept, 0u);
  EXPECT_TRUE(reopened.load(key).has_value());
}

}  // namespace
}  // namespace rlcx::core
