// The kill-9 chaos harness (docs/robustness.md "Durability & crash
// recovery").  Each test forks a child, arms a crash-action fault schedule
// (`site:N!` — the process dies with _exit(137) at the Nth hit, no atexit,
// no buffers flushed, exactly what `kill -9` leaves behind), runs real
// journal/cache/batch work in the child, then asserts the recovery
// invariants from the parent:
//
//   * a reopened journal recovers exactly the whole-record prefix,
//     byte-for-byte — a torn tail is dropped, never trusted;
//   * a cache killed at any point of the staged write publishes nothing:
//     the entry is absent and the orphaned staging file is swept at the
//     next open;
//   * a restarted daemon never serves a torn table — the startup sweep
//     quarantines it and the request re-characterises;
//   * `batch --resume` after a mid-campaign kill re-solves zero completed
//     keys.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "core/table_builder.h"
#include "core/table_cache.h"
#include "diag/warnings.h"
#include "geom/technology.h"
#include "numeric/units.h"
#include "run/fault_injection.h"
#include "run/journal.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace rlcx {
namespace {

namespace fs = std::filesystem;
using units::um;

struct ScratchDir {
  std::string path;
  explicit ScratchDir(const std::string& name)
      : path((fs::path(::testing::TempDir()) / name).string()) {
    std::error_code ec;
    fs::remove_all(path, ec);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

struct InjectorReset {
  ~InjectorReset() { run::FaultInjector::global().clear(); }
};

// Collects warning messages emitted while alive (instead of stderr).
struct WarningCapture {
  std::vector<std::string> captured;
  diag::ScopedWarningHandler handler;
  WarningCapture()
      : handler([this](const diag::Warning& w) {
          captured.push_back(w.message);
        }) {}
};

/// Forks; the child arms `schedule`, runs `body`, and exits 0 if it
/// survives (the armed crash should have killed it first).  Returns the
/// child's wait status for WIFEXITED/WEXITSTATUS assertions.
int run_doomed_child(const std::string& schedule,
                     const std::function<void()>& body) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: no gtest assertions in here — communicate via exit status
    // only.  An uncaught exception maps to a distinct code so the parent
    // can tell "crashed as scheduled" (137) from "threw instead" (7).
    try {
      run::FaultInjector::global().set_schedule(schedule);
      body();
    } catch (...) {
      ::_exit(7);
    }
    ::_exit(0);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

#define ASSERT_DIED_137(status)                                       \
  ASSERT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";     \
  ASSERT_EQ(WEXITSTATUS(status), 137)                                 \
      << "child was expected to die at the armed crash site"

// ---------------------------------------------------------------- journal

TEST(CrashRecovery, JournalTearCrashReopensByteExact) {
  const ScratchDir dir("rlcx_crash_journal_tear");
  const std::string path = dir.path + "/batch.journal";
  {
    run::BatchJournal j(path);
    j.record("00000000000000aa");
  }
  const std::string clean = slurp(path);

  const int status = run_doomed_child("journal_tear:1!", [&] {
    run::BatchJournal j(path);
    j.record("00000000000000bb");  // dies mid-record, half a line on disk
  });
  ASSERT_DIED_137(status);
  const std::string torn = slurp(path);
  ASSERT_GT(torn.size(), clean.size()) << "crash left no torn bytes";
  ASSERT_EQ(torn.substr(0, clean.size()), clean);

  WarningCapture warnings;
  run::BatchJournal recovered(path);
  EXPECT_TRUE(recovered.contains("00000000000000aa"));
  EXPECT_FALSE(recovered.contains("00000000000000bb"));
  EXPECT_EQ(recovered.tail_dropped_bytes(), torn.size() - clean.size());
  // The repair is byte-exact: the file is the clean prefix again.
  EXPECT_EQ(slurp(path), clean);
  ASSERT_FALSE(warnings.captured.empty());
  EXPECT_NE(warnings.captured[0].find("torn trailing bytes"),
            std::string::npos);
}

TEST(CrashRecovery, CrashAtSecondRecordLeavesFirstIntact) {
  const ScratchDir dir("rlcx_crash_journal_nth");
  const std::string path = dir.path + "/batch.journal";
  const int status = run_doomed_child("journal_tear:2!", [&] {
    run::BatchJournal j(path);
    j.record("00000000000000aa");  // call 1: survives
    j.record("00000000000000bb");  // call 2: dies mid-record
  });
  ASSERT_DIED_137(status);
  run::BatchJournal recovered(path);
  EXPECT_TRUE(recovered.contains("00000000000000aa"));
  EXPECT_FALSE(recovered.contains("00000000000000bb"));
  EXPECT_EQ(recovered.size(), 1u);
}

TEST(CrashRecovery, FsyncModeCrashAtTheFlushCannotTear) {
  const ScratchDir dir("rlcx_crash_journal_fsync");
  const std::string path = dir.path + "/batch.journal";
  const int status = run_doomed_child("journal_fsync:1!", [&] {
    // The site guards the per-record flush — by the time it fires, the
    // record's bytes are fully written.
    run::BatchJournal j(path, run::Durability::kFsync);
    j.record("00000000000000aa");
  });
  ASSERT_DIED_137(status);
  run::BatchJournal recovered(path);
  EXPECT_TRUE(recovered.contains("00000000000000aa"));
  EXPECT_EQ(recovered.tail_dropped_bytes(), 0u);
}

// ------------------------------------------------------------ table cache

core::TableGrid tiny_grid() {
  core::TableGrid g;
  g.widths = {um(2), um(8)};
  g.spacings = {um(1), um(4)};
  g.lengths = {um(200), um(1000)};
  return g;
}

solver::SolveOptions fast_options() {
  solver::SolveOptions opt;
  opt.frequency = 1e9;
  opt.auto_mesh = false;
  opt.mesh.nw = 1;
  opt.mesh.nt = 1;
  return opt;
}

// Every fault site on the staged-write path, killed at first hit: the
// crash lands (a) before any bytes, (b) mid-tmp-write, (c) after the
// fsynced tmp but before the rename.  In every case the invariant is the
// same: nothing is published, and the next open sweeps the debris.
TEST(CrashRecovery, StoreCrashAtEverySiteNeverPublishes) {
  const geom::Technology tech = geom::Technology::generic_025um();
  const core::TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();
  const std::string key = core::TableCache::key_text(
      tech, 6, geom::PlaneConfig::kNone, grid, opt);

  const std::vector<std::string> sites = {"cache_write:1!", "io_enospc:1!",
                                          "io_short_write:1!",
                                          "cache_staged:1!"};
  for (const std::string& site : sites) {
    const ScratchDir dir("rlcx_crash_store");
    {
      // Warm the directory (and prove the build works) without faults.
      core::TableCache plain(dir.path);
      EXPECT_TRUE(plain.load(key) == std::nullopt);
    }
    const int status = run_doomed_child(site, [&] {
      core::TableCache cache(dir.path);
      const core::InductanceTables tables = core::build_tables(
          tech, 6, geom::PlaneConfig::kNone, grid, opt);
      cache.store(key, tables);
    });
    ASSERT_DIED_137(status) << "site " << site;

    // No published entry, ever — and whatever staging debris the crash
    // left is swept before anything can be served.
    WarningCapture warnings;
    core::TableCache reopened(dir.path);
    EXPECT_EQ(reopened.stats().quarantined_at_startup, 0u) << site;
    EXPECT_TRUE(reopened.load(key) == std::nullopt) << site;
    for (const auto& e : fs::directory_iterator(dir.path))
      EXPECT_EQ(e.path().string().find(".tmp."), std::string::npos)
          << "staging file survived the sweep after " << site << ": "
          << e.path();
  }
}

TEST(CrashRecovery, RestartedDaemonQuarantinesTornTableBeforeServing) {
  const ScratchDir dir("rlcx_crash_serve");
  serve::ServeConfig cfg;
  cfg.cache_dir = dir.path + "/cache";
  cfg.max_tables = 4;
  cfg.max_active = 2;
  cfg.queue_depth = 4;
  const std::string request = serve::join_request(
      {"extract", "--structure", "cpw", "--length-um", "6000", "--traces",
       "s:10,s:5", "--spacings", "2"});

  std::string first_out;
  {
    std::ostringstream diag;
    serve::Server server(cfg, diag);
    serve::MemoryStream stream(
        serve::encode_frame(serve::FrameKind::kRequest, request));
    server.handle_connection(stream);
    serve::MemoryStream replies(stream.output());
    serve::Frame f;
    ASSERT_TRUE(serve::read_frame(replies, &f));
    const serve::Response r = serve::parse_response(f.payload);
    ASSERT_EQ(r.status, 0) << r.err;
    first_out = r.out;
  }

  // Tear the published entry the way a kill mid-rename-less write cannot
  // (the atomic publish prevents it) but disk corruption still can.
  std::string entry;
  for (const auto& e : fs::directory_iterator(cfg.cache_dir))
    if (e.path().extension() == ".tbl") entry = e.path().string();
  ASSERT_FALSE(entry.empty());
  fs::resize_file(entry, 6);  // smaller than any legal bundle

  // The restarted daemon quarantines at open and re-characterises: the
  // client sees the same answer, never the torn bytes.
  WarningCapture warnings;
  std::ostringstream diag;
  serve::Server server(cfg, diag);
  serve::MemoryStream stream(
      serve::encode_frame(serve::FrameKind::kRequest, request) +
      serve::encode_frame(serve::FrameKind::kRequest, "stats"));
  server.handle_connection(stream);
  serve::MemoryStream replies(stream.output());
  serve::Frame f;
  ASSERT_TRUE(serve::read_frame(replies, &f));
  const serve::Response r = serve::parse_response(f.payload);
  EXPECT_EQ(r.status, 0) << r.err;
  EXPECT_EQ(r.out, first_out);
  ASSERT_TRUE(serve::read_frame(replies, &f));
  const serve::Response stats = serve::parse_response(f.payload);
  EXPECT_NE(stats.out.find("1 quarantined at startup"), std::string::npos)
      << stats.out;
}

// ------------------------------------------------------------------ batch

TEST(CrashRecovery, BatchKilledMidCampaignResumesWithZeroSolves) {
  const ScratchDir dir("rlcx_crash_batch");
  const std::vector<std::string> base{
      "batch",    "--table-cache", dir.path, "--layers", "6",
      "--points", "2",             "--planes-list",      "none"};

  // The child dies inside the journal append for the first completed job:
  // the table is stored, the completion record is torn.
  const int status = run_doomed_child("journal_tear:1!", [&] {
    std::ostringstream out;
    std::ostringstream err;
    cli::run(base, out, err);
  });
  ASSERT_DIED_137(status);

  // --resume: the torn record is dropped (so 0 resumed from the journal),
  // but the stored table makes the job a cache hit — zero re-solves.
  std::vector<std::string> resume = base;
  resume.push_back("--resume");
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::run(resume, out, err);
  ASSERT_EQ(code, 0) << err.str();
  EXPECT_NE(out.str().find("1 jobs"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("0 field solves"), std::string::npos)
      << out.str();
  // The stored table served the job: the cache, not the solver, did the
  // work.
  EXPECT_NE(out.str().find("1 hits"), std::string::npos) << out.str();
}

}  // namespace
}  // namespace rlcx
