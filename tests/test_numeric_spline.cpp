// Unit and property tests for cubic-spline interpolation.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/spline.h"

namespace rlcx {
namespace {

TEST(CubicSpline, ReproducesKnots) {
  const std::vector<double> x{0.0, 1.0, 2.5, 4.0};
  const std::vector<double> y{1.0, -2.0, 0.5, 3.0};
  CubicSpline s(x, y);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(s.eval(x[i]), y[i], 1e-12);
}

TEST(CubicSpline, ExactOnLinearData) {
  // Natural splines reproduce linear functions exactly.
  const auto x = linspace(0.0, 10.0, 7);
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 * xi - 2.0);
  CubicSpline s(x, y);
  for (double q = -1.0; q <= 11.0; q += 0.37)
    EXPECT_NEAR(s.eval(q), 3.0 * q - 2.0, 1e-10);
}

TEST(CubicSpline, SmoothFunctionAccuracy) {
  const auto x = linspace(0.0, 3.141592653589793, 21);
  std::vector<double> y;
  for (double xi : x) y.push_back(std::sin(xi));
  CubicSpline s(x, y);
  for (double q = 0.05; q < 3.1; q += 0.11)
    EXPECT_NEAR(s.eval(q), std::sin(q), 2e-4);
}

TEST(CubicSpline, LinearExtrapolationBeyondRange) {
  const auto x = linspace(1.0, 2.0, 5);
  std::vector<double> y;
  for (double xi : x) y.push_back(xi * xi);
  CubicSpline s(x, y);
  // Outside the range the continuation is linear: second differences vanish.
  const double f1 = s.eval(3.0), f2 = s.eval(4.0), f3 = s.eval(5.0);
  EXPECT_NEAR(f3 - f2, f2 - f1, 1e-9);
}

TEST(CubicSpline, RejectsBadInput) {
  EXPECT_THROW(CubicSpline({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CubicSpline({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(CubicSpline({2.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(CubicSpline({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(CubicSpline, DerivativeMatchesFiniteDifference) {
  const auto x = linspace(0.0, 2.0, 15);
  std::vector<double> y;
  for (double xi : x) y.push_back(std::exp(xi));
  CubicSpline s(x, y);
  const double q = 0.73;
  const double fd = (s.eval(q + 1e-6) - s.eval(q - 1e-6)) / 2e-6;
  EXPECT_NEAR(s.derivative(q), fd, 1e-5);
}

TEST(TensorSpline, MatchesBicubicOnSeparableFunction) {
  const auto ax = linspace(0.0, 2.0, 9);
  const auto ay = linspace(1.0, 3.0, 11);
  std::vector<double> vals;
  for (double x : ax)
    for (double y : ay) vals.push_back(std::sin(x) * std::log(y));
  TensorSpline t({ax, ay}, vals);
  // Natural boundary conditions cost some accuracy near the grid edges;
  // a few 1e-3 absolute is the expected bicubic error at this density.
  for (double x = 0.1; x < 2.0; x += 0.3)
    for (double y = 1.1; y < 3.0; y += 0.4)
      EXPECT_NEAR(t.eval({x, y}), std::sin(x) * std::log(y), 5e-3);
}

TEST(TensorSpline, FourDimensionalLookup) {
  // A 4-D multilinear function is reproduced exactly.
  const auto a = linspace(0.0, 1.0, 3);
  std::vector<double> vals;
  for (double w1 : a)
    for (double w2 : a)
      for (double s : a)
        for (double l : a)
          vals.push_back(1.0 + w1 + 2.0 * w2 + 3.0 * s + 4.0 * l);
  TensorSpline t({a, a, a, a}, vals);
  EXPECT_NEAR(t.eval({0.25, 0.5, 0.75, 0.1}),
              1.0 + 0.25 + 1.0 + 2.25 + 0.4, 1e-9);
}

TEST(TensorSpline, ValueCountMismatchThrows) {
  EXPECT_THROW(TensorSpline({{0.0, 1.0}, {0.0, 1.0}}, {1.0, 2.0, 3.0}),
               std::invalid_argument);
}

TEST(TensorSpline, QueryDimensionMismatchThrows) {
  TensorSpline t({{0.0, 1.0}}, {0.0, 1.0});
  EXPECT_THROW(t.eval({0.5, 0.5}), std::invalid_argument);
}

TEST(Grids, LinspaceEndpointsAndSpacing) {
  const auto g = linspace(2.0, 4.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 2.0);
  EXPECT_DOUBLE_EQ(g.back(), 4.0);
  EXPECT_NEAR(g[1] - g[0], 0.5, 1e-15);
}

TEST(Grids, GeomspaceRatioConstant) {
  const auto g = geomspace(1.0, 16.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 1.0);
  EXPECT_DOUBLE_EQ(g.back(), 16.0);
  for (std::size_t i = 1; i + 1 < g.size(); ++i)
    EXPECT_NEAR(g[i + 1] / g[i], g[i] / g[i - 1], 1e-12);
}

TEST(Grids, RejectBadArguments) {
  EXPECT_THROW(linspace(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(geomspace(0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(geomspace(1.0, -1.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace rlcx
