// Tests for the pre-characterised capacitance tables.
#include <gtest/gtest.h>

#include <sstream>

#include "cap/cap_tables.h"
#include "geom/builders.h"
#include "numeric/units.h"

namespace rlcx::cap {
namespace {

using units::um;

const geom::Technology& tech() {
  static const geom::Technology t = geom::Technology::generic_025um();
  return t;
}

Fd2dOptions fd() {
  Fd2dOptions o;
  o.cell = 0.5e-6;
  o.margin = 8e-6;
  return o;
}

const CapTables& tables() {
  static const CapTables t = [] {
    CapTableGrid grid;
    grid.widths = {um(2), um(4), um(8)};
    // Coupling falls off like ~1/s: the spacing axis needs density where
    // the curvature lives.
    grid.spacings = {um(1.5), um(2.5), um(4), um(6)};
    return CapTables::build(tech(), 6, geom::PlaneConfig::kNone, grid, fd());
  }();
  return t;
}

TEST(CapTables, MetadataAndPhysicalValues) {
  EXPECT_EQ(tables().layer(), 6);
  EXPECT_EQ(tables().planes(), geom::PlaneConfig::kNone);
  EXPECT_FALSE(tables().empty());
  // On-grid magnitudes in the plausible band (tens of fF/mm each).
  const double cg = tables().cg(um(4), um(3));
  const double cc = tables().cc(um(4), um(3));
  EXPECT_GT(cg, 1e-12);   // > 1 fF/mm
  EXPECT_LT(cg, 1e-9);
  EXPECT_GT(cc, 1e-12);
  EXPECT_LT(cc, 1e-9);
}

TEST(CapTables, MatchesDirectFdSolveOnGrid) {
  // On a grid node the spline must reproduce the characterisation solve.
  const geom::Block sub = geom::uniform_array(tech(), 6, 1e-4, 3, um(4),
                                              um(2.5));
  const RealMatrix c = fd_block_capacitance(sub, fd());
  double row = 0.0;
  for (std::size_t j = 0; j < 3; ++j) row += c(1, j);
  EXPECT_NEAR(tables().cg(um(4), um(2.5)), row, 1e-6 * row);
  EXPECT_NEAR(tables().cc(um(4), um(2.5)), -c(1, 2), 1e-6 * (-c(1, 2)));
}

TEST(CapTables, InterpolatesOffGridWithinFewPercent) {
  const geom::Block sub = geom::uniform_array(tech(), 6, 1e-4, 3, um(5.5),
                                              um(3.2));
  const RealMatrix c = fd_block_capacitance(sub, fd());
  double row = 0.0;
  for (std::size_t j = 0; j < 3; ++j) row += c(1, j);
  EXPECT_NEAR(tables().cg(um(5.5), um(3.2)), row, 0.05 * row);
  EXPECT_NEAR(tables().cc(um(5.5), um(3.2)), -c(1, 2), 0.10 * (-c(1, 2)));
}

TEST(CapTables, TrendsAreMonotone) {
  // Wider -> more ground cap; closer -> more coupling.
  EXPECT_GT(tables().cg(um(8), um(3)), tables().cg(um(2), um(3)));
  EXPECT_GT(tables().cc(um(4), um(1.5)), tables().cc(um(4), um(6)));
}

TEST(CapTables, RoundTripThroughStream) {
  std::stringstream ss;
  tables().save(ss);
  const CapTables r = CapTables::load(ss);
  EXPECT_EQ(r.layer(), tables().layer());
  EXPECT_NEAR(r.cg(um(3), um(2)), tables().cg(um(3), um(2)), 1e-20);
  EXPECT_NEAR(r.cc(um(3), um(2)), tables().cc(um(3), um(2)), 1e-20);
}

TEST(CapTables, FileRoundTripAndErrors) {
  const std::string path = "/tmp/rlcx_cap_tables.txt";
  tables().save_file(path);
  const CapTables r = CapTables::load_file(path);
  EXPECT_FALSE(r.empty());
  EXPECT_THROW(CapTables::load_file("/nonexistent/c.txt"),
               std::runtime_error);
  std::stringstream bad("nope 1 6 0\n");
  EXPECT_THROW(CapTables::load(bad), std::runtime_error);
}

TEST(CapTables, BuildValidation) {
  CapTableGrid bad;
  bad.widths = {um(2)};
  bad.spacings = {um(1), um(2)};
  EXPECT_THROW(
      CapTables::build(tech(), 6, geom::PlaneConfig::kNone, bad, fd()),
      std::invalid_argument);
  CapTables empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW(empty.cg(um(2), um(2)), std::logic_error);
}

}  // namespace
}  // namespace rlcx::cap
