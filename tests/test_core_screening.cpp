// Tests for the inductance-significance screen.
#include <gtest/gtest.h>

#include "cap/extractor.h"
#include "core/screening.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/block_solver.h"
#include "solver/frequency.h"

namespace rlcx::core {
namespace {

using units::um;

TEST(Screening, Figure1ClockNetIsInductanceSignificant) {
  // Feed the screen the actual extracted values of the paper's clock net.
  const geom::Technology tech = geom::Technology::generic_025um();
  const geom::Block net =
      geom::coplanar_waveguide(tech, 6, um(6000), um(10), um(5), um(1));
  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(100e-12);

  ScreeningInput in;
  in.resistance = 6.0;  // rho l / (w t)
  in.inductance = solver::extract_loop(net, sopt).inductance(0, 0);
  const cap::CapResult c = cap::extract_cap(net);
  in.capacitance = c.total(1) * net.length();
  in.rise_time = 100e-12;  // fast CPU clock edge; 200 ps is borderline

  const ScreeningResult r = screen_inductance(in);
  EXPECT_TRUE(r.underdamped);        // R = 6 << 2 Z0
  EXPECT_TRUE(r.edge_fast_enough);   // 200 ps vs 2*sqrt(LC)
  EXPECT_TRUE(r.inductance_significant);
  EXPECT_GT(r.line_impedance, 5.0);
  EXPECT_LT(r.line_impedance, 100.0);
}

TEST(Screening, ResistiveThinWireIsNot) {
  // A long minimum-width wire: R dominates, overdamped, RC suffices.
  ScreeningInput in;
  in.resistance = 500.0;   // thin wire
  in.inductance = 2e-9;
  in.capacitance = 0.4e-12;
  in.rise_time = 100e-12;
  const ScreeningResult r = screen_inductance(in);
  EXPECT_FALSE(r.underdamped);
  EXPECT_FALSE(r.inductance_significant);
}

TEST(Screening, SlowEdgeIsNot) {
  ScreeningInput in;
  in.resistance = 5.0;
  in.inductance = 1e-9;
  in.capacitance = 0.5e-12;
  in.rise_time = 2e-9;  // 2 ns edge on a 22 ps-flight line
  const ScreeningResult r = screen_inductance(in);
  EXPECT_TRUE(r.underdamped);
  EXPECT_FALSE(r.edge_fast_enough);
  EXPECT_FALSE(r.inductance_significant);
}

TEST(Screening, RatiosMatchDefinitions) {
  ScreeningInput in;
  in.resistance = 10.0;
  in.inductance = 4e-9;
  in.capacitance = 1e-12;
  in.rise_time = 80e-12;
  const ScreeningResult r = screen_inductance(in);
  EXPECT_NEAR(r.time_of_flight, 63.2e-12, 0.1e-12);
  EXPECT_NEAR(r.line_impedance, 63.2, 0.1);
  EXPECT_NEAR(r.edge_ratio, 80e-12 / (2.0 * r.time_of_flight), 1e-12);
  EXPECT_NEAR(r.damping_ratio, 10.0 / (2.0 * r.line_impedance), 1e-9);
}

TEST(Screening, RejectsBadInput) {
  ScreeningInput in;
  EXPECT_THROW(screen_inductance(in), std::invalid_argument);
  in.resistance = 1.0;
  in.inductance = 1e-9;
  in.capacitance = 1e-12;
  in.rise_time = -1.0;
  EXPECT_THROW(screen_inductance(in), std::invalid_argument);
}

}  // namespace
}  // namespace rlcx::core
