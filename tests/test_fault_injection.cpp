// Fault-injection harness: deliberately break inputs, caches and numerics
// and verify every failure surfaces as a categorized, diagnosable report —
// quarantine-and-rebuild for cache corruption, `numeric` errors naming the
// poisoned table / diverging node / singular column, and a visible warning
// (with the residual) for a non-converged field solve.  Zero aborts, zero
// silent garbage.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cap/fd2d.h"
#include "ckt/transient.h"
#include "core/inductance_model.h"
#include "core/table_builder.h"
#include "core/table_cache.h"
#include "diag/error.h"
#include "diag/warnings.h"
#include "geom/technology.h"
#include "numeric/lu.h"
#include "numeric/units.h"
#include "run/fault_injection.h"

namespace rlcx {
namespace {

namespace fs = std::filesystem;
using units::um;

// ---- Cache corruption ------------------------------------------------

struct ScratchDir {
  std::string path;
  explicit ScratchDir(const std::string& name)
      : path((fs::path(::testing::TempDir()) / name).string()) {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

core::TableGrid tiny_grid() {
  core::TableGrid g;
  g.widths = {um(2), um(8)};
  g.spacings = {um(1), um(4)};
  g.lengths = {um(200), um(1000)};
  return g;
}

solver::SolveOptions fast_options() {
  solver::SolveOptions opt;
  opt.frequency = 1e9;
  opt.auto_mesh = false;
  opt.mesh.nw = 1;
  opt.mesh.nt = 1;
  return opt;
}

// Rewrites the single .tbl entry in `dir` through `mutate(bytes)`.
void corrupt_entry(const std::string& dir,
                   const std::function<void(std::string&)>& mutate) {
  for (const fs::directory_entry& de : fs::directory_iterator(dir)) {
    if (de.path().extension() != ".tbl") continue;
    std::ifstream in(de.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    mutate(bytes);
    std::ofstream out(de.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
}

// Every corruption mode — truncation, header damage, version skew and a
// NaN-poisoned payload — must be quarantined and transparently rebuilt.
TEST(FaultInjectionCache, CorruptEntriesAreQuarantinedAndRebuilt) {
  const ScratchDir dir("rlcx_fault_cache");
  const geom::Technology tech = geom::Technology::generic_025um();
  const core::TableGrid grid = tiny_grid();
  const solver::SolveOptions opt = fast_options();

  const std::vector<
      std::pair<const char*, std::function<void(std::string&)>>>
      modes{
          {"truncated", [](std::string& b) { b.resize(b.size() / 3); }},
          {"bad magic", [](std::string& b) { b[0] = 'X'; }},
          {"future version", [](std::string& b) { b[4] = 99; }},
          {"NaN payload",
           [](std::string& b) {
             const double nan = std::numeric_limits<double>::quiet_NaN();
             std::memcpy(b.data() + b.size() - sizeof nan, &nan, sizeof nan);
           }},
      };

  core::TableCache cache(dir.path);  // kRecover: the default policy
  core::build_tables_cached(tech, 6, geom::PlaneConfig::kNone, grid, opt,
                            cache);
  std::size_t expected_quarantines = 0;
  for (const auto& [label, mutate] : modes) {
    corrupt_entry(dir.path, mutate);
    std::vector<diag::Warning> warnings;
    core::reset_table_build_solve_count();
    {
      const diag::ScopedWarningHandler capture(
          [&](const diag::Warning& w) { warnings.push_back(w); });
      // Never aborts, never throws: the corrupt entry reads as a miss and
      // the tables are re-characterised from scratch.
      core::build_tables_cached(tech, 6, geom::PlaneConfig::kNone, grid,
                                opt, cache);
    }
    EXPECT_GT(core::table_build_solve_count(), 0u) << label;
    EXPECT_EQ(cache.stats().quarantined, ++expected_quarantines) << label;
    ASSERT_EQ(warnings.size(), 1u) << label;
    EXPECT_EQ(warnings[0].category, diag::Category::kCache) << label;
    EXPECT_NE(warnings[0].message.find("quarantined"), std::string::npos)
        << label;
  }
  // The evidence is preserved on disk (entry + key sidecar; a repeat
  // incident on the same entry overwrites the previous pair), and purge()
  // sweeps it along with the live entry.
  std::size_t quarantine_files = 0;
  for (const fs::directory_entry& de : fs::directory_iterator(dir.path))
    if (de.path().extension() == ".quarantine") ++quarantine_files;
  EXPECT_EQ(quarantine_files, 2u);
  cache.purge();
  EXPECT_TRUE(fs::is_empty(dir.path));
}

// ---- Poisoned table bundles ------------------------------------------

core::InductanceTables small_bundle() {
  core::InductanceTables t;
  t.layer = 6;
  t.planes = geom::PlaneConfig::kNone;
  t.frequency = 1e9;
  const std::vector<double> ax{1.0, 2.0};
  t.self = core::NdTable({"width", "length"}, {ax, ax}, {1, 2, 3, 4});
  std::vector<double> mv(16, 0.5);
  t.mutual = core::NdTable({"w1", "w2", "s", "l"}, {ax, ax, ax, ax}, mv);
  t.series_r = core::NdTable({"width", "length"}, {ax, ax}, {5, 6, 7, 8});
  return t;
}

TEST(FaultInjectionTables, NaNPoisonedBundleNamesTheTable) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  small_bundle().save_binary(ss);
  std::string blob = ss.str();
  // The bundle's tail is the series-R value block; poison its last double.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(blob.data() + blob.size() - sizeof nan, &nan, sizeof nan);
  std::stringstream bad(blob, std::ios::in | std::ios::binary);
  try {
    core::InductanceTables::load_binary(bad);
    FAIL() << "NaN payload must be rejected";
  } catch (const diag::NumericError& e) {
    EXPECT_NE(std::string(e.what()).find("table 'series-R'"),
              std::string::npos)
        << e.what();
    EXPECT_EQ(e.category(), diag::Category::kNumeric);
  }
}

TEST(FaultInjectionTables, TruncatedBundleIsAnIoError) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  small_bundle().save_binary(ss);
  const std::string blob = ss.str();
  std::stringstream cut(blob.substr(0, blob.size() - 7),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(core::InductanceTables::load_binary(cut), diag::IoError);
}

// ---- Singular linear systems -----------------------------------------

TEST(FaultInjectionLu, SingularSystemNamesColumnAndCondition) {
  // Column 1 is identically zero: elimination must fail there, not at the
  // end, and the report carries the breakdown column and system size.
  Matrix<double> a{{1.0, 0.0, 2.0}, {3.0, 0.0, 4.0}, {5.0, 0.0, 6.0}};
  try {
    LuDecomposition<double> lu(a);
    FAIL() << "singular matrix must be rejected";
  } catch (const diag::SingularSystem& e) {
    EXPECT_EQ(e.column(), 1u);
    EXPECT_EQ(e.dimension(), 3u);
    EXPECT_TRUE(std::isinf(e.condition_estimate()));
    EXPECT_NE(std::string(e.what()).find("zero pivot at column 1"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultInjectionLu, NonFinitePivotIsCategorized) {
  Matrix<double> a{{1.0, 2.0},
                   {std::numeric_limits<double>::quiet_NaN(), 3.0}};
  EXPECT_THROW(LuDecomposition<double> lu(a), diag::SingularSystem);
}

TEST(FaultInjectionLu, ConditionEstimateTracksPivotSpread) {
  Matrix<double> a{{1.0, 0.0}, {0.0, 1e-12}};
  const LuDecomposition<double> lu(a);
  EXPECT_NEAR(lu.condition_estimate(), 1e12, 1e9);
}

// ---- Diverging transients --------------------------------------------

TEST(FaultInjectionTransient, DivergenceGuardNamesStepAndNode) {
  // A perfectly healthy 1.8 V ramp against an (artificially tight) 0.5 V
  // bound: the march must halt the moment 'in' crosses it, naming the
  // step, the time and the node — not run to completion on garbage.
  ckt::Netlist nl;
  const ckt::NodeId in = nl.add_node("in");
  const ckt::NodeId out = nl.add_node("out");
  nl.add_vsource(in, ckt::kGround, ckt::SourceWaveform::ramp(1.8, 1e-9));
  nl.add_resistor(in, out, 1e3);
  nl.add_capacitor(out, ckt::kGround, 1e-12);

  ckt::TransientOptions opt;
  opt.t_stop = 5e-9;
  opt.dt = 1e-12;
  opt.divergence_limit = 0.5;
  try {
    ckt::simulate(nl, opt);
    FAIL() << "the guard must halt the march";
  } catch (const diag::NumericError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("node 'in'"), std::string::npos) << what;
    EXPECT_NE(what.find("at step"), std::string::npos) << what;
    EXPECT_NE(what.find("divergence_limit"), std::string::npos) << what;
  }
  // The same circuit with the default (1 kV) limit completes normally.
  opt.divergence_limit = 1e3;
  EXPECT_NO_THROW(ckt::simulate(nl, opt));
}

// ---- Non-converged field solves --------------------------------------

TEST(FaultInjectionSor, NonConvergenceWarnsWithResidual) {
  // Two traces with a starved iteration budget and no escalation: the
  // solve must complete (degraded, not dead) and say so — once per drive,
  // with the residual — while the report exposes the same numbers.
  const std::vector<cap::FdConductor> traces{
      {0.0, um(2), 0.0, um(0.5)}, {um(4), um(6), 0.0, um(0.5)}};
  cap::Fd2dOptions opt;
  opt.max_iterations = 3;
  opt.escalate_on_nonconvergence = false;

  std::vector<diag::Warning> warnings;
  cap::SorReport report;
  {
    const diag::ScopedWarningHandler capture(
        [&](const diag::Warning& w) { warnings.push_back(w); });
    cap::fd_capacitance_matrix(traces, 3.9, -um(1), opt, &report);
  }
  EXPECT_FALSE(report.converged);
  EXPECT_GT(report.residual, 0.0);
  EXPECT_EQ(report.iterations, 3);
  ASSERT_EQ(warnings.size(), 2u);  // one per driven conductor
  for (const diag::Warning& w : warnings) {
    EXPECT_EQ(w.category, diag::Category::kNumeric);
    EXPECT_EQ(w.stage, "fd2d");
    EXPECT_NE(w.message.find("not converged"), std::string::npos);
    EXPECT_NE(w.message.find("residual"), std::string::npos);
  }
}

TEST(FaultInjectionSor, ScheduledDivergenceDrivesTheEscalationLadder) {
  // The RLCX_FAULT_SCHEDULE path: `sor_diverge:1` discards the first
  // attempt's convergence verdict, so a perfectly healthy solve must walk
  // the escalation ladder, recover, and stay silent.
  struct InjectorReset {
    ~InjectorReset() { run::FaultInjector::global().clear(); }
  } injector_reset;
  const std::vector<cap::FdConductor> traces{
      {0.0, um(2), 0.0, um(0.5)}, {um(4), um(6), 0.0, um(0.5)}};
  const cap::Fd2dOptions opt;  // generous default budget

  run::FaultInjector::global().set_schedule("sor_diverge:1");
  std::vector<diag::Warning> warnings;
  cap::SorReport report;
  {
    const diag::ScopedWarningHandler capture(
        [&](const diag::Warning& w) { warnings.push_back(w); });
    cap::fd_capacitance_matrix(traces, 3.9, -um(1), opt, &report);
  }
  EXPECT_EQ(run::FaultInjector::global().triggered("sor_diverge"), 1u);
  EXPECT_GT(report.retries, 0);         // the ladder visibly ran
  EXPECT_TRUE(report.converged);        // and recovered
  EXPECT_TRUE(warnings.empty());        // recovery is not warning-worthy
}

TEST(FaultInjectionSor, EscalationLadderRetriesAStarvedBudget) {
  // A budget known (from the test above) to starve the first attempt: with
  // escalation enabled the ladder must visibly retry with safer relaxation
  // and a larger budget, and warn only if even the ladder fails.
  const std::vector<cap::FdConductor> traces{
      {0.0, um(2), 0.0, um(0.5)}, {um(4), um(6), 0.0, um(0.5)}};
  cap::Fd2dOptions opt;
  opt.max_iterations = 3;
  std::vector<diag::Warning> warnings;
  cap::SorReport report;
  {
    const diag::ScopedWarningHandler capture(
        [&](const diag::Warning& w) { warnings.push_back(w); });
    cap::fd_capacitance_matrix(traces, 3.9, -um(1), opt, &report);
  }
  EXPECT_GT(report.retries, 0);
  if (report.converged)
    EXPECT_TRUE(warnings.empty());
  else
    EXPECT_FALSE(warnings.empty());
}

}  // namespace
}  // namespace rlcx
