// Batched characterisation/extraction: bit-identity with the serial
// single-job paths, key-level dedup, cache integration, checkpoint/resume
// via the batch journal, and the parallel per-level tree sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "clocktree/tree_netlist.h"
#include "core/batch_extractor.h"
#include "core/rlc_extractor.h"
#include "diag/error.h"
#include "diag/warnings.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "rt/pool.h"
#include "run/control.h"
#include "run/fault_injection.h"
#include "run/journal.h"

namespace rlcx::core {
namespace {

namespace fs = std::filesystem;
using units::um;

struct ScratchDir {
  std::string path;
  explicit ScratchDir(const std::string& name)
      : path((fs::path(::testing::TempDir()) / name).string()) {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

TableGrid tiny_grid() {
  TableGrid g;
  g.widths = {um(2), um(8)};
  g.spacings = {um(1), um(4)};
  g.lengths = {um(200), um(1000)};
  return g;
}

solver::SolveOptions fast_options() {
  solver::SolveOptions opt;
  opt.frequency = 1e9;
  opt.auto_mesh = false;
  opt.mesh.nw = 1;
  opt.mesh.nt = 1;
  return opt;
}

void expect_same_tables(const InductanceTables& a, const InductanceTables& b) {
  ASSERT_EQ(a.mutual.values().size(), b.mutual.values().size());
  for (std::size_t i = 0; i < a.mutual.values().size(); ++i)
    EXPECT_EQ(a.mutual.values()[i], b.mutual.values()[i]) << i;
  ASSERT_EQ(a.self.values().size(), b.self.values().size());
  for (std::size_t i = 0; i < a.self.values().size(); ++i)
    EXPECT_EQ(a.self.values()[i], b.self.values()[i]) << i;
  ASSERT_EQ(a.series_r.values().size(), b.series_r.values().size());
  for (std::size_t i = 0; i < a.series_r.values().size(); ++i)
    EXPECT_EQ(a.series_r.values()[i], b.series_r.values()[i]) << i;
}

TEST(CharacterizeBatch, MatchesSingleBuildsBitForBit) {
  const geom::Technology tech = geom::Technology::generic_025um();
  const solver::SolveOptions opt = fast_options();
  std::vector<BatchJob> jobs(2);
  jobs[0] = {6, geom::PlaneConfig::kNone, tiny_grid()};
  jobs[1] = {4, geom::PlaneConfig::kNone, tiny_grid()};

  rt::Pool pool(3);
  BatchOptions bopt;
  bopt.pool = &pool;
  const BatchResult batch = characterize_batch(tech, jobs, opt, bopt);

  ASSERT_EQ(batch.tables.size(), 2u);
  ASSERT_EQ(batch.stats.size(), 2u);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const InductanceTables single = build_tables(
        tech, jobs[j].layer, jobs[j].planes, jobs[j].grid, opt);
    expect_same_tables(single, batch.tables[j]);
    EXPECT_EQ(batch.stats[j].solves, 16u) << j;
    EXPECT_EQ(batch.stats[j].grid_points, 16u) << j;
    EXPECT_EQ(batch.stats[j].threads, 3) << j;
    EXPECT_TRUE(batch.library.has(jobs[j].layer, jobs[j].planes)) << j;
  }
}

TEST(CharacterizeBatch, FoldsDuplicateJobs) {
  const geom::Technology tech = geom::Technology::generic_025um();
  const solver::SolveOptions opt = fast_options();
  std::vector<BatchJob> jobs(2);
  jobs[0] = {6, geom::PlaneConfig::kNone, tiny_grid()};
  jobs[1] = {6, geom::PlaneConfig::kNone, tiny_grid()};  // identical

  reset_table_build_solve_count();
  const BatchResult batch = characterize_batch(tech, jobs, opt);
  EXPECT_EQ(table_build_solve_count(), 16u);  // one build, not two
  EXPECT_EQ(batch.stats[0].solves, 16u);
  EXPECT_EQ(batch.stats[1].solves, 0u);  // folded into job 0
  expect_same_tables(batch.tables[0], batch.tables[1]);
}

TEST(CharacterizeBatch, WarmCachePerformsZeroSolves) {
  const ScratchDir dir("rlcx_batch_cache");
  const geom::Technology tech = geom::Technology::generic_025um();
  const solver::SolveOptions opt = fast_options();
  const std::vector<BatchJob> jobs = {{6, geom::PlaneConfig::kNone,
                                       tiny_grid()}};

  TableCache cache(dir.path);
  BatchOptions bopt;
  bopt.cache = &cache;
  const BatchResult cold = characterize_batch(tech, jobs, opt, bopt);
  EXPECT_EQ(cold.stats[0].solves, 16u);
  EXPECT_EQ(cache.stats().misses, 1u);

  TableCache warm(dir.path);
  BatchOptions wopt;
  wopt.cache = &warm;
  reset_table_build_solve_count();
  const BatchResult hit = characterize_batch(tech, jobs, opt, wopt);
  EXPECT_EQ(table_build_solve_count(), 0u);
  EXPECT_EQ(warm.stats().hits, 1u);
  EXPECT_EQ(hit.stats[0].solves, 0u);
  expect_same_tables(cold.tables[0], hit.tables[0]);
}

TEST(CharacterizeBatch, JournalRecordsEveryCompletedJob) {
  const ScratchDir dir("rlcx_batch_journal");
  const geom::Technology tech = geom::Technology::generic_025um();
  const solver::SolveOptions opt = fast_options();
  const std::vector<BatchJob> jobs = {
      {6, geom::PlaneConfig::kNone, tiny_grid()},
      {4, geom::PlaneConfig::kNone, tiny_grid()}};

  TableCache cache(dir.path);
  run::BatchJournal journal(dir.path + "/batch.journal");
  BatchOptions bopt;
  bopt.cache = &cache;
  bopt.journal = &journal;
  const BatchResult res = characterize_batch(tech, jobs, opt, bopt);
  EXPECT_EQ(res.jobs_resumed, 0u);
  EXPECT_EQ(journal.size(), 2u);
  for (const BatchJob& job : jobs) {
    const std::string id = TableCache::key_id(
        TableCache::key_text(tech, job.layer, job.planes, job.grid, opt));
    EXPECT_TRUE(journal.contains(id)) << id;
    // Journal/cache consistency: a journaled id has its entry on disk.
    EXPECT_TRUE(fs::exists(fs::path(dir.path) / (id + ".tbl"))) << id;
  }
}

TEST(CharacterizeBatch, JournaledKeyMissingFromCacheRebuildsWithWarning) {
  const ScratchDir dir("rlcx_batch_journal_miss");
  const geom::Technology tech = geom::Technology::generic_025um();
  const solver::SolveOptions opt = fast_options();
  const std::vector<BatchJob> jobs = {
      {6, geom::PlaneConfig::kNone, tiny_grid()}};
  const std::string id = TableCache::key_id(TableCache::key_text(
      tech, jobs[0].layer, jobs[0].planes, jobs[0].grid, opt));

  TableCache cache(dir.path);
  run::BatchJournal journal(dir.path + "/batch.journal");
  journal.record(id);  // journaled complete, but the cache is empty

  std::vector<diag::Warning> warnings;
  const diag::ScopedWarningHandler handler(
      [&](const diag::Warning& w) { warnings.push_back(w); });
  BatchOptions bopt;
  bopt.cache = &cache;
  bopt.journal = &journal;
  reset_table_build_solve_count();
  const BatchResult res = characterize_batch(tech, jobs, opt, bopt);
  // Degrades to an ordinary rebuild, loudly.
  EXPECT_EQ(res.jobs_resumed, 0u);
  EXPECT_EQ(table_build_solve_count(), 16u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].message.find(id), std::string::npos);
  EXPECT_NE(warnings[0].message.find("re-characterising"), std::string::npos);
}

// The acceptance scenario: a campaign killed mid-flight (deterministically,
// via the `cancel` injection site) relaunches with the same journal and
// completes with ZERO re-solves for journaled jobs and tables byte-equal
// to an uninterrupted run.
TEST(CharacterizeBatch, InterruptedCampaignResumesWithZeroReSolves) {
  struct InjectorReset {
    ~InjectorReset() { run::FaultInjector::global().clear(); }
  } injector_reset;

  const geom::Technology tech = geom::Technology::generic_025um();
  const solver::SolveOptions opt = fast_options();
  std::vector<BatchJob> jobs(2);
  jobs[0] = {6, geom::PlaneConfig::kNone, tiny_grid()};
  jobs[1] = {4, geom::PlaneConfig::kNone, tiny_grid()};
  rt::Pool pool(1);  // single worker: a deterministic checkpoint sequence

  // Reference: an uninterrupted campaign.  The armed-but-unreachable
  // `cancel` entry counts the total checkpoints this workload passes.
  run::FaultInjector::global().set_schedule("cancel:1000000000");
  const ScratchDir ref_dir("rlcx_resume_ref");
  TableCache ref_cache(ref_dir.path);
  run::BatchJournal ref_journal(ref_dir.path + "/batch.journal");
  BatchOptions ref_opt;
  ref_opt.cache = &ref_cache;
  ref_opt.pool = &pool;
  ref_opt.journal = &ref_journal;
  BatchResult reference;
  {
    run::RunControl rc;
    run::ScopedRunControl scope(rc);
    reference = characterize_batch(tech, jobs, opt, ref_opt);
  }
  const std::uint64_t total_checkpoints =
      run::FaultInjector::global().calls("cancel");
  ASSERT_GT(total_checkpoints, 8u);
  EXPECT_EQ(ref_journal.size(), 2u);

  // Interrupted campaign: cancel at ~60% of those checkpoints — past the
  // first job's half of the flat range, inside the second job's.
  const ScratchDir dir("rlcx_resume");
  TableCache cache(dir.path);
  std::size_t done_after_interrupt = 0;
  {
    run::BatchJournal journal(dir.path + "/batch.journal");
    BatchOptions bopt;
    bopt.cache = &cache;
    bopt.pool = &pool;
    bopt.journal = &journal;
    run::FaultInjector::global().set_schedule(
        "cancel:" + std::to_string(3 * total_checkpoints / 5));
    run::RunControl rc;
    run::ScopedRunControl scope(rc);
    EXPECT_THROW(characterize_batch(tech, jobs, opt, bopt),
                 diag::CancelledError);
    done_after_interrupt = journal.size();
    // Partial progress, not none and not all; every journaled id is
    // durable in the cache (no partially-written entries).
    EXPECT_GE(done_after_interrupt, 1u);
    EXPECT_LT(done_after_interrupt, 2u);
    for (const std::string& id : journal.completed()) {
      EXPECT_TRUE(fs::exists(fs::path(dir.path) / (id + ".tbl"))) << id;
      EXPECT_TRUE(fs::exists(fs::path(dir.path) / (id + ".key"))) << id;
    }
  }
  run::FaultInjector::global().clear();

  // Resume: reopen the same journal and cache, rerun the same jobs.
  run::BatchJournal journal(dir.path + "/batch.journal");
  ASSERT_EQ(journal.size(), done_after_interrupt);
  TableCache warm(dir.path);
  BatchOptions ropt;
  ropt.cache = &warm;
  ropt.pool = &pool;
  ropt.journal = &journal;
  reset_table_build_solve_count();
  const BatchResult resumed = characterize_batch(tech, jobs, opt, ropt);
  // Zero re-solves for journaled jobs: only the unfinished ones build.
  EXPECT_EQ(resumed.jobs_resumed, done_after_interrupt);
  EXPECT_EQ(table_build_solve_count(),
            16u * (jobs.size() - done_after_interrupt));
  EXPECT_EQ(journal.size(), 2u);
  // Byte-identical tables vs the uninterrupted campaign.
  for (std::size_t j = 0; j < jobs.size(); ++j)
    expect_same_tables(reference.tables[j], resumed.tables[j]);
}

TEST(ExtractSegmentsBatch, MatchesSerialExtraction) {
  const geom::Technology tech = geom::Technology::generic_025um();
  solver::SolveOptions sopt = fast_options();
  std::vector<geom::Block> blocks;
  blocks.push_back(geom::coplanar_waveguide(tech, 6, um(800), um(4), um(6), um(2)));
  blocks.push_back(geom::coplanar_waveguide(tech, 6, um(400), um(2), um(4), um(1)));
  blocks.push_back(geom::coplanar_waveguide(tech, 6, um(1500), um(6), um(8), um(3)));

  InductanceLibrary lib;
  lib.add(6, geom::PlaneConfig::kNone,
          std::make_shared<DirectInductanceModel>(&tech, 6,
                                                  geom::PlaneConfig::kNone,
                                                  sopt));

  rt::Pool pool(3);
  const std::vector<SegmentRlc> par =
      extract_segments_batch(blocks, lib, {}, &pool);
  ASSERT_EQ(par.size(), blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const SegmentRlc serial = extract_segment_rlc(
        blocks[i], lib.provider(6, geom::PlaneConfig::kNone));
    ASSERT_EQ(serial.resistance.size(), par[i].resistance.size());
    for (std::size_t t = 0; t < serial.resistance.size(); ++t)
      EXPECT_EQ(serial.resistance[t], par[i].resistance[t]);
    ASSERT_EQ(serial.inductance.rows(), par[i].inductance.rows());
    for (std::size_t r = 0; r < serial.inductance.rows(); ++r)
      for (std::size_t c = 0; c < serial.inductance.cols(); ++c)
        EXPECT_EQ(serial.inductance(r, c), par[i].inductance(r, c));
    for (std::size_t t = 0; t < serial.cap_ground.size(); ++t)
      EXPECT_EQ(serial.cap_ground[t], par[i].cap_ground[t]);
  }
}

TEST(ExtractSegmentsBatch, MissingProviderFailsBeforeAnyWork) {
  const geom::Technology tech = geom::Technology::generic_025um();
  std::vector<geom::Block> blocks;
  blocks.push_back(geom::coplanar_waveguide(tech, 6, um(800), um(4), um(6), um(2)));
  const InductanceLibrary empty;
  EXPECT_THROW(extract_segments_batch(blocks, empty), std::exception);
}

}  // namespace
}  // namespace rlcx::core

namespace rlcx::clocktree {
namespace {

using units::um;

TEST(ExtractTreeSegments, ParallelSweepMatchesPerLevelSerial) {
  const geom::Technology tech = geom::Technology::generic_025um();
  solver::SolveOptions sopt;
  sopt.frequency = 1e9;
  sopt.auto_mesh = false;
  sopt.mesh.nw = 1;
  sopt.mesh.nt = 1;

  const HTreeSpec spec = example_cpw_tree();  // 3 levels, all (6, none)
  core::InductanceLibrary lib;
  for (std::size_t lv = 0; lv < spec.levels.size(); ++lv) {
    const geom::Block blk = level_block(tech, spec, lv);
    if (!lib.has(blk.layer_index(), blk.planes()))
      lib.add(blk.layer_index(), blk.planes(),
              std::make_shared<core::DirectInductanceModel>(
                  &tech, blk.layer_index(), blk.planes(), sopt));
  }

  rt::Pool pool(3);
  const TreeSegments par = extract_tree_segments(tech, spec, lib, {}, &pool);
  ASSERT_EQ(par.blocks.size(), spec.levels.size());
  ASSERT_EQ(par.rlc.size(), spec.levels.size());
  for (std::size_t lv = 0; lv < spec.levels.size(); ++lv) {
    const geom::Block blk = level_block(tech, spec, lv);
    const core::SegmentRlc serial = core::extract_segment_rlc(
        blk, lib.provider(blk.layer_index(), blk.planes()));
    ASSERT_EQ(serial.inductance.rows(), par.rlc[lv].inductance.rows());
    for (std::size_t r = 0; r < serial.inductance.rows(); ++r)
      for (std::size_t c = 0; c < serial.inductance.cols(); ++c)
        EXPECT_EQ(serial.inductance(r, c), par.rlc[lv].inductance(r, c))
            << "level " << lv;
    for (std::size_t t = 0; t < serial.resistance.size(); ++t)
      EXPECT_EQ(serial.resistance[t], par.rlc[lv].resistance[t]);
  }
}

}  // namespace
}  // namespace rlcx::clocktree
