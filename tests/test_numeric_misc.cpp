// Tests for elliptic integrals, statistics and units.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "numeric/elliptic.h"
#include "numeric/stats.h"
#include "numeric/units.h"

namespace rlcx {
namespace {

TEST(Elliptic, KnownValues) {
  // K(0) = pi/2.
  EXPECT_NEAR(elliptic_k(0.0), std::numbers::pi / 2.0, 1e-12);
  // Abramowitz & Stegun: K(0.5) = 1.6857503548...
  EXPECT_NEAR(elliptic_k(0.5), 1.6857503548125961, 1e-10);
  // K(sin 45 deg) = 1.8540746773...
  EXPECT_NEAR(elliptic_k(std::numbers::sqrt2 / 2.0), 1.854074677301372,
              1e-10);
}

TEST(Elliptic, RejectsOutOfRange) {
  EXPECT_THROW(elliptic_k(-0.1), std::invalid_argument);
  EXPECT_THROW(elliptic_k(1.0), std::invalid_argument);
  EXPECT_THROW(elliptic_k_ratio(0.0), std::invalid_argument);
  EXPECT_THROW(elliptic_k_ratio(1.0), std::invalid_argument);
}

TEST(Elliptic, RatioSymmetryPoint) {
  // At k = 1/sqrt(2), k = k' so the ratio is exactly 1 (Hilberg's closed
  // form is accurate to a few ppm).
  EXPECT_NEAR(elliptic_k_ratio(std::numbers::sqrt2 / 2.0), 1.0, 1e-5);
}

TEST(Elliptic, RatioMatchesDirectComputation) {
  for (double k : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double kp = std::sqrt(1.0 - k * k);
    const double direct = elliptic_k(k) / elliptic_k(kp);
    EXPECT_NEAR(elliptic_k_ratio(k), direct, 1e-5 * direct) << "k=" << k;
  }
}

TEST(RunningStats, MeanVarianceExtrema) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, RelSpreadDefinition) {
  RunningStats s;
  s.add(9.0);
  s.add(11.0);
  // sigma = sqrt(2), mean = 10 -> 3 sigma / mean = 0.4242...
  EXPECT_NEAR(s.rel_spread3(), 3.0 * std::sqrt(2.0) / 10.0, 1e-12);
}

TEST(GaussianSampler, DeterministicAndCentered) {
  GaussianSampler g1(42), g2(42);
  RunningStats s;
  for (int i = 0; i < 4000; ++i) {
    const double a = g1.sample(10.0, 2.0);
    const double b = g2.sample(10.0, 2.0);
    EXPECT_DOUBLE_EQ(a, b);  // same seed, same stream
    s.add(a);
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.15);
  EXPECT_NEAR(s.stddev(), 2.0, 0.15);
}

TEST(GaussianSampler, TruncationRespected) {
  GaussianSampler g(7);
  for (int i = 0; i < 2000; ++i) {
    const double v = g.sample_truncated(1.0, 0.5, 2.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 2.0);
  }
}

TEST(Percentile, OrderStatistics) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_NEAR(percentile(v, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(percentile(v, 100.0), 5.0, 1e-12);
  EXPECT_NEAR(percentile(v, 50.0), 3.0, 1e-12);
  EXPECT_NEAR(percentile(v, 25.0), 2.0, 1e-12);
}

TEST(Percentile, Errors) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Units, RoundTrips) {
  using namespace units;
  EXPECT_DOUBLE_EQ(um(10.0), 1e-5);
  EXPECT_DOUBLE_EQ(to_um(um(123.0)), 123.0);
  EXPECT_DOUBLE_EQ(to_ps(ps(47.6)), 47.6);
  EXPECT_DOUBLE_EQ(to_nh(nh(0.5)), 0.5);
  EXPECT_DOUBLE_EQ(to_ghz(ghz(3.2)), 3.2);
}

TEST(Units, PhysicalConstants) {
  EXPECT_NEAR(kMu0, 1.25663706e-6, 1e-12);
  EXPECT_NEAR(kEps0 * kMu0 * 2.99792458e8 * 2.99792458e8, 1.0, 1e-4);
}

}  // namespace
}  // namespace rlcx
