// The relative-geometry kernel memo (PairKey) and the two-pass matrix fill.
//
// Contracts pinned here:
//  * PairKey is invariant under translation, and — only with
//    fold_symmetries — under per-axis mirror reflection and bar exchange;
//    it separates genuinely different geometry;
//  * the default memoized fill equals the direct fill element-exactly — on
//    a dyadic uniform mesh (where translation-equal pairs are bit-identical
//    and the memo collapses them) and on a perturbed mesh (where every pair
//    is its own class); the opt-in symmetry folding reorders the bracket
//    for mirrored pairs, so it agrees to a tight tolerance instead;
//  * the memo hit rate clears 90 % on a skin-depth-meshed microstrip block
//    (the geometry the paper's tables are built from);
//  * the fill is element-exact deterministic across pool widths.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "diag/error.h"
#include "numeric/units.h"
#include "peec/assembly.h"
#include "peec/mesh.h"
#include "peec/partial_inductance.h"
#include "rt/pool.h"

namespace rlcx::peec {
namespace {

using units::um;

Bar make_bar(double w, double t, double l, double x = 0.0, double z = 0.0,
             double y0 = 0.0, Axis axis = Axis::kY) {
  Bar b;
  b.axis = axis;
  b.a_min = y0;
  b.length = l;
  b.t_min = x;
  b.t_width = w;
  b.z_min = z;
  b.z_thick = t;
  return b;
}

TEST(PairKey, TranslationInvariant) {
  const double q = 1e-12;
  const Bar a1 = make_bar(1.0, 0.5, 40.0, 0.0, 0.0);
  const Bar b1 = make_bar(2.0, 0.5, 40.0, 3.0, 1.0);
  // The same pair, rigidly moved in all three directions.
  const Bar a2 = make_bar(1.0, 0.5, 40.0, 10.0, -2.0, 7.0);
  const Bar b2 = make_bar(2.0, 0.5, 40.0, 13.0, -1.0, 7.0);
  EXPECT_EQ(make_pair_key(a1, b1, q), make_pair_key(a2, b2, q));
}

TEST(PairKey, ExchangeAndMirrorInvariantWhenFolded) {
  const double q = 1e-12;
  const Bar a = make_bar(1.0, 0.5, 40.0, 0.0, 0.0);
  const Bar b = make_bar(2.0, 0.25, 40.0, 3.0, 1.5, 5.0);
  const PairKey k = make_pair_key(a, b, q, /*fold_symmetries=*/true);
  EXPECT_EQ(k, make_pair_key(b, a, q, true));
  // Mirror the pair about the t = 0 plane (centers negate, widths keep).
  const Bar am = make_bar(1.0, 0.5, 40.0, -1.0, 0.0);
  const Bar bm = make_bar(2.0, 0.25, 40.0, -5.0, 1.5, 5.0);
  EXPECT_EQ(k, make_pair_key(am, bm, q, true));
  // The default (translation-only) key deliberately keeps mirrored copies
  // apart: their kernel evaluations differ in the last ulp.
  EXPECT_NE(make_pair_key(a, b, q), make_pair_key(am, bm, q));
  EXPECT_NE(make_pair_key(a, b, q), make_pair_key(b, a, q));
}

TEST(PairKey, SeparatesDifferentGeometry) {
  const double q = 1e-12;
  const Bar a = make_bar(1.0, 0.5, 40.0, 0.0, 0.0);
  const Bar b = make_bar(1.0, 0.5, 40.0, 3.0, 0.0);
  const Bar b_far = make_bar(1.0, 0.5, 40.0, 3.5, 0.0);
  const Bar b_fat = make_bar(1.25, 0.5, 40.0, 3.0, 0.0);
  EXPECT_NE(make_pair_key(a, b, q), make_pair_key(a, b_far, q));
  EXPECT_NE(make_pair_key(a, b, q), make_pair_key(a, b_fat, q));
  EXPECT_NE(make_pair_key(a, b, q), make_self_key(a, q));
}

TEST(ChunkLengthwise, ExactCover) {
  const Bar b = make_bar(1.0, 0.5, 300.0);
  const std::vector<Bar> chunks = chunk_lengthwise(b, 128.0);
  ASSERT_GT(chunks.size(), 1u);
  double len = 0.0;
  for (const Bar& c : chunks) len += c.length;
  EXPECT_NEAR(len, b.length, 1e-12 * b.length);
  EXPECT_DOUBLE_EQ(chunks.front().a_min, b.a_min);
}

/// Uniform dyadic mesh: 8x8 cells of a 1.0 x 0.5 cross-section, so every
/// cell boundary is an exact power-of-two fraction and equivalent pairs
/// present bit-identical inputs to the kernel.
std::vector<Filament> dyadic_mesh() {
  MeshOptions mo;
  mo.nw = 8;
  mo.nt = 8;
  mo.grading = 1.0;
  std::vector<Filament> fils;
  for (const Bar& b : mesh_cross_section(make_bar(1.0, 0.5, 64.0), mo))
    fils.push_back({b, 1.0, 0.0});
  return fils;
}

TEST(MemoFill, ElementExactOnUniformMesh) {
  const std::vector<Filament> fils = dyadic_mesh();
  PartialOptions opt;
  opt.memo = false;
  FillStats off;
  const RealMatrix direct = partial_inductance_matrix(fils, opt, nullptr, &off);
  opt.memo = true;
  FillStats on;
  const RealMatrix memo = partial_inductance_matrix(fils, opt, nullptr, &on);

  ASSERT_EQ(direct.rows(), memo.rows());
  for (std::size_t i = 0; i < direct.rows(); ++i)
    for (std::size_t j = 0; j < direct.cols(); ++j)
      EXPECT_EQ(direct(i, j), memo(i, j)) << "(" << i << "," << j << ")";

  EXPECT_EQ(off.memo_hits, 0u);
  EXPECT_EQ(off.kernel_evals, off.pair_lookups);
  EXPECT_EQ(on.pair_lookups, off.pair_lookups);
  EXPECT_EQ(on.kernel_evals + on.memo_hits, on.pair_lookups);
  // 64 filaments = 2080 pairs; the uniform grid collapses them to the
  // O(n) distinct signed (di, dj) offset classes.
  EXPECT_GT(on.hit_rate(), 0.9);
}

TEST(MemoFill, ElementExactOnPerturbedMesh) {
  // Every filament gets its own cross-section (distinct shrink per cell),
  // so no two pairs share a class and the memo must degrade gracefully to
  // the direct fill, element-exactly.
  std::vector<Filament> fils = dyadic_mesh();
  for (std::size_t i = 0; i < fils.size(); ++i) {
    const double shrink = 1.0 - 1e-4 * static_cast<double>(i + 1);
    fils[i].bar.t_width *= shrink;
    fils[i].bar.z_thick *= shrink;
  }
  PartialOptions opt;
  opt.memo = false;
  const RealMatrix direct = partial_inductance_matrix(fils, opt);
  opt.memo = true;
  FillStats on;
  const RealMatrix memo = partial_inductance_matrix(fils, opt, nullptr, &on);
  EXPECT_EQ(on.memo_hits, 0u);
  for (std::size_t i = 0; i < direct.rows(); ++i)
    for (std::size_t j = 0; j < direct.cols(); ++j)
      EXPECT_EQ(direct(i, j), memo(i, j)) << "(" << i << "," << j << ")";
}

TEST(MemoFill, SymmetryFoldingTightToleranceAndMoreReuse) {
  // Folding mirror/exchange symmetries merges classes whose kernel inputs
  // are reflections of each other — mathematically equal, but the bracket
  // sums its 64 mutually-cancelling terms in a different order, so the
  // agreement is limited by the kernel's cancellation noise (~1e-9 of the
  // matrix scale here), not by one ulp.  The folded fill must stay within
  // that noise floor and must evaluate strictly fewer kernels than the
  // translation-only key.
  const std::vector<Filament> fils = dyadic_mesh();
  PartialOptions opt;
  opt.memo = false;
  const RealMatrix direct = partial_inductance_matrix(fils, opt);
  opt.memo = true;
  FillStats plain;
  partial_inductance_matrix(fils, opt, nullptr, &plain);
  opt.memo_fold_symmetries = true;
  FillStats folded;
  const RealMatrix fold = partial_inductance_matrix(fils, opt, nullptr, &folded);

  EXPECT_LT(folded.kernel_evals, plain.kernel_evals);
  double scale = 0.0;
  for (std::size_t i = 0; i < direct.rows(); ++i)
    for (std::size_t j = 0; j < direct.cols(); ++j)
      scale = std::max(scale, std::abs(direct(i, j)));
  for (std::size_t i = 0; i < direct.rows(); ++i)
    for (std::size_t j = 0; j < direct.cols(); ++j)
      EXPECT_NEAR(direct(i, j), fold(i, j), 1e-7 * scale)
          << "(" << i << "," << j << ")";
}

TEST(MemoFill, SignsFoldedLikeDirectFill) {
  std::vector<Filament> fils = dyadic_mesh();
  for (std::size_t i = 0; i < fils.size(); ++i)
    fils[i].sign = (i % 3 == 0) ? -1.0 : 1.0;
  PartialOptions opt;
  opt.memo = false;
  const RealMatrix direct = partial_inductance_matrix(fils, opt);
  opt.memo = true;
  const RealMatrix memo = partial_inductance_matrix(fils, opt);
  for (std::size_t i = 0; i < direct.rows(); ++i)
    for (std::size_t j = 0; j < direct.cols(); ++j)
      EXPECT_EQ(direct(i, j), memo(i, j));
}

/// A microstrip block the way the solver meshes one: a signal trace over a
/// ground plane split into identical uniform-pitch strips, every conductor
/// cross-section meshed for the skin depth at 5 GHz.
std::vector<Filament> microstrip_filaments() {
  const double rho = 2.2e-8;       // copper-ish [ohm m]
  const double f = 5e9;            // significant frequency [Hz]
  const double depth = skin_depth(rho, f);
  const double length = um(400);

  std::vector<Filament> fils;
  const auto add_meshed = [&](const Bar& envelope) {
    const MeshOptions mo = mesh_for_skin_depth(envelope, depth);
    for (const Bar& b : mesh_cross_section(envelope, mo))
      fils.push_back({b, 1.0, bar_resistance(b, rho)});
  };

  // Signal trace: 4 um x 1 um, centered over the plane.
  add_meshed(make_bar(um(4), um(1), length, -um(2), um(2)));
  // Ground plane: 64 strips of 4 um x 0.8 um at exact 4 um pitch.
  const int strips = 64;
  for (int i = 0; i < strips; ++i)
    add_meshed(
        make_bar(um(4), um(0.8), length, um(4) * (i - strips / 2), 0.0));
  return fils;
}

TEST(MemoFill, HitRateAbove90PercentOnMicrostrip) {
  const std::vector<Filament> fils = microstrip_filaments();
  FillStats stats;
  const RealMatrix lp =
      partial_inductance_matrix(fils, PartialOptions{}, nullptr, &stats);
  EXPECT_EQ(stats.pair_lookups,
            fils.size() * (fils.size() + 1) / 2);
  EXPECT_EQ(stats.kernel_evals + stats.memo_hits, stats.pair_lookups);
  EXPECT_GT(stats.hit_rate(), 0.9)
      << "kernel_evals=" << stats.kernel_evals
      << " lookups=" << stats.pair_lookups;
  // Sanity: symmetric, positive diagonal.
  for (std::size_t i = 0; i < lp.rows(); ++i) {
    EXPECT_GT(lp(i, i), 0.0);
    for (std::size_t j = i + 1; j < lp.cols(); ++j)
      EXPECT_EQ(lp(i, j), lp(j, i));
  }
}

TEST(MemoFill, DeterministicAcrossPoolWidths) {
  const std::vector<Filament> fils = microstrip_filaments();
  rt::Pool one(1);
  rt::Pool three(3);
  const RealMatrix a =
      partial_inductance_matrix(fils, PartialOptions{}, &one);
  const RealMatrix b =
      partial_inductance_matrix(fils, PartialOptions{}, &three);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_EQ(a(i, j), b(i, j));
}

TEST(MemoFill, GlobalCountersAggregate) {
  reset_fill_stats_total();
  const std::vector<Filament> fils = dyadic_mesh();
  FillStats local;
  partial_inductance_matrix(fils, PartialOptions{}, nullptr, &local);
  const FillStats total = fill_stats_total();
  EXPECT_EQ(total.pair_lookups, local.pair_lookups);
  EXPECT_EQ(total.kernel_evals, local.kernel_evals);
  EXPECT_EQ(total.memo_hits, local.memo_hits);
}

TEST(MemoFill, CoincidentBarsStillRejected) {
  // Two distinct filaments occupying the same volume must hit the
  // disjointness guard even though their pair key degenerates.
  std::vector<Filament> fils;
  fils.push_back({make_bar(1.0, 0.5, 64.0), 1.0, 0.0});
  fils.push_back({make_bar(1.0, 0.5, 64.0), 1.0, 0.0});
  EXPECT_THROW(partial_inductance_matrix(fils, PartialOptions{}),
               diag::GeometryError);
}

}  // namespace
}  // namespace rlcx::peec
