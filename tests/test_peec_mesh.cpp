// Tests for skin depth and cross-section meshing.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/units.h"
#include "peec/mesh.h"

namespace rlcx::peec {
namespace {

using units::um;

Bar envelope(double w, double t, double l) {
  Bar b;
  b.axis = Axis::kY;
  b.length = l;
  b.t_width = w;
  b.z_thick = t;
  return b;
}

TEST(SkinDepth, CopperAtKnownFrequencies) {
  // delta = sqrt(rho / (pi f mu0)); for rho = 2e-8 at 1 GHz:
  // sqrt(2e-8 / (pi * 1e9 * 4pi e-7)) = 2.25 um.
  EXPECT_NEAR(skin_depth(2e-8, 1e9), 2.2508e-6, 1e-9);
  // Quadruple the frequency, halve the depth.
  EXPECT_NEAR(skin_depth(2e-8, 4e9), skin_depth(2e-8, 1e9) / 2.0, 1e-12);
}

TEST(SkinDepth, RejectsBadInput) {
  EXPECT_THROW(skin_depth(0.0, 1e9), std::invalid_argument);
  EXPECT_THROW(skin_depth(2e-8, 0.0), std::invalid_argument);
}

TEST(GradedBoundaries, CoversUnitIntervalMonotonically) {
  for (int n : {1, 2, 3, 5, 8}) {
    const auto b = graded_boundaries(n, 2.0);
    ASSERT_EQ(b.size(), static_cast<std::size_t>(n) + 1);
    EXPECT_DOUBLE_EQ(b.front(), 0.0);
    EXPECT_DOUBLE_EQ(b.back(), 1.0);
    for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
  }
}

TEST(GradedBoundaries, EdgeCellsSmallerThanCenter) {
  const auto b = graded_boundaries(5, 2.0);
  const double edge = b[1] - b[0];
  const double center = b[3] - b[2];
  EXPECT_LT(edge, center);
  // Symmetric: last cell equals first.
  EXPECT_NEAR(b[5] - b[4], edge, 1e-12);
}

TEST(GradedBoundaries, UniformWhenGradingOne) {
  const auto b = graded_boundaries(4, 1.0);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(b[i + 1] - b[i], 0.25, 1e-12);
}

TEST(MeshCrossSection, TilesEnvelopeExactly) {
  const Bar env = envelope(um(10), um(2), um(100));
  MeshOptions opt;
  opt.nw = 4;
  opt.nt = 3;
  const auto fils = mesh_cross_section(env, opt);
  ASSERT_EQ(fils.size(), 12u);
  double area = 0.0;
  for (const Bar& f : fils) {
    area += f.cross_area();
    EXPECT_GE(f.t_min, env.t_min - 1e-15);
    EXPECT_LE(f.t_max(), env.t_max() + 1e-15);
    EXPECT_GE(f.z_min, env.z_min - 1e-15);
    EXPECT_LE(f.z_max(), env.z_max() + 1e-15);
    EXPECT_DOUBLE_EQ(f.length, env.length);
  }
  EXPECT_NEAR(area, env.cross_area(), 1e-12 * env.cross_area());
}

TEST(MeshCrossSection, SingleFilamentIsIdentity) {
  const Bar env = envelope(um(3), um(1), um(50));
  MeshOptions opt;
  opt.nw = 1;
  opt.nt = 1;
  const auto fils = mesh_cross_section(env, opt);
  ASSERT_EQ(fils.size(), 1u);
  EXPECT_DOUBLE_EQ(fils[0].t_width, env.t_width);
  EXPECT_DOUBLE_EQ(fils[0].z_thick, env.z_thick);
}

TEST(MeshForSkinDepth, FineMeshWhenSkinThin) {
  const Bar env = envelope(um(10), um(2), um(100));
  // Skin depth far larger than the conductor -> single filament.
  const MeshOptions coarse = mesh_for_skin_depth(env, um(100), 5);
  EXPECT_EQ(coarse.nw, 1);
  EXPECT_EQ(coarse.nt, 1);
  // Skin depth much smaller -> capped at the maximum.
  const MeshOptions fine = mesh_for_skin_depth(env, um(0.5), 5);
  EXPECT_EQ(fine.nw, 5);
  EXPECT_EQ(fine.nt, 4);
}

TEST(MeshForSkinDepth, Errors) {
  const Bar env = envelope(um(10), um(2), um(100));
  EXPECT_THROW(mesh_for_skin_depth(env, 0.0), std::invalid_argument);
  EXPECT_THROW(graded_boundaries(0, 2.0), std::invalid_argument);
  EXPECT_THROW(mesh_cross_section(envelope(0.0, um(1), um(1)), MeshOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rlcx::peec
