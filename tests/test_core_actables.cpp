// Tests for the AC-resistance tables and the bundled table persistence.
#include <gtest/gtest.h>

#include <sstream>

#include "cap/models.h"
#include "core/rlc_extractor.h"
#include "core/table_builder.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/frequency.h"

namespace rlcx::core {
namespace {

using geom::PlaneConfig;
using geom::Technology;
using units::um;

const Technology& tech() {
  static const Technology t = Technology::generic_025um();
  return t;
}

solver::SolveOptions hf_opts() {
  solver::SolveOptions o;
  o.frequency = 10e9;  // deep skin-effect regime for 10 um wires
  o.max_filaments_per_dim = 4;
  return o;
}

const InductanceTables& tables() {
  static const InductanceTables t = [] {
    TableGrid g;
    g.widths = {um(2), um(6), um(14)};
    g.spacings = {um(1), um(3), um(8)};
    g.lengths = {um(300), um(1000), um(3000)};
    return build_tables(tech(), 6, PlaneConfig::kNone, g, hf_opts());
  }();
  return t;
}

TEST(AcResistanceTable, CharacterisedAndAboveDc) {
  EXPECT_EQ(tables().series_r.dims(), 2u);
  const TableInductanceModel model(tables());
  const double r_ac = model.series_resistance(um(14), um(3000));
  const double r_dc =
      cap::segment_resistance(um(14), um(2), um(3000), 2e-8);
  EXPECT_GT(r_ac, r_dc);          // skin effect raises R
  EXPECT_LT(r_ac, 5.0 * r_dc);    // but not absurdly
}

TEST(AcResistanceTable, MatchesDirectProvider) {
  const TableInductanceModel model(tables());
  const DirectInductanceModel direct(&tech(), 6, PlaneConfig::kNone,
                                     hf_opts());
  const double rt = model.series_resistance(um(6), um(1000));
  const double rd = direct.series_resistance(um(6), um(1000));
  EXPECT_NEAR(rt, rd, 0.02 * rd);  // on-grid point
}

TEST(AcResistanceTable, ProviderWithoutTableReportsUnavailable) {
  InductanceTables bare = tables();
  bare.series_r = NdTable();
  const TableInductanceModel model(bare);
  EXPECT_LT(model.series_resistance(um(6), um(1000)), 0.0);
}

TEST(AcResistanceTable, ExtractionOptionSwitchesR) {
  const geom::Block blk =
      geom::coplanar_waveguide(tech(), 6, um(1000), um(14), um(14), um(1));
  const TableInductanceModel model(tables());
  const SegmentRlc dc = extract_segment_rlc(blk, model);
  ExtractOptions eopt;
  eopt.ac_resistance = true;
  const SegmentRlc ac = extract_segment_rlc(blk, model, eopt);
  EXPECT_GT(ac.resistance[1], dc.resistance[1]);
  // DC path still matches the analytic value exactly.
  EXPECT_NEAR(dc.resistance[1],
              cap::segment_resistance(um(14), um(2), um(1000), 2e-8), 1e-9);
}

TEST(AcResistanceTable, FallsBackWhenUncharacterised) {
  InductanceTables bare = tables();
  bare.series_r = NdTable();
  const TableInductanceModel model(bare);
  const geom::Block blk =
      geom::coplanar_waveguide(tech(), 6, um(1000), um(6), um(6), um(1));
  ExtractOptions eopt;
  eopt.ac_resistance = true;
  const SegmentRlc seg = extract_segment_rlc(blk, model, eopt);
  EXPECT_NEAR(seg.resistance[1],
              cap::segment_resistance(um(6), um(2), um(1000), 2e-8), 1e-9);
}

TEST(TablesBundle, RoundTripThroughStream) {
  std::stringstream ss;
  tables().save(ss);
  const InductanceTables r = InductanceTables::load(ss);
  EXPECT_EQ(r.layer, tables().layer);
  EXPECT_EQ(r.planes, tables().planes);
  EXPECT_DOUBLE_EQ(r.frequency, tables().frequency);
  const TableInductanceModel a(tables());
  const TableInductanceModel b(r);
  EXPECT_NEAR(a.self(um(4), um(700)), b.self(um(4), um(700)), 1e-18);
  EXPECT_NEAR(a.mutual(um(4), um(8), um(2), um(700)),
              b.mutual(um(4), um(8), um(2), um(700)), 1e-18);
  EXPECT_NEAR(a.series_resistance(um(4), um(700)),
              b.series_resistance(um(4), um(700)), 1e-12);
}

TEST(TablesBundle, EmptyResistanceTableRoundTrips) {
  InductanceTables bare = tables();
  bare.series_r = NdTable();
  std::stringstream ss;
  bare.save(ss);
  const InductanceTables r = InductanceTables::load(ss);
  EXPECT_EQ(r.series_r.dims(), 0u);
}

TEST(TablesBundle, FileRoundTripAndErrors) {
  const std::string path = "/tmp/rlcx_tables_bundle.txt";
  tables().save_file(path);
  const InductanceTables r = InductanceTables::load_file(path);
  EXPECT_EQ(r.self.dims(), 2u);
  EXPECT_THROW(InductanceTables::load_file("/nonexistent/x.txt"),
               std::runtime_error);
  std::stringstream bad("garbage 1 6 0 1e9\n");
  EXPECT_THROW(InductanceTables::load(bad), std::runtime_error);
}

}  // namespace
}  // namespace rlcx::core
