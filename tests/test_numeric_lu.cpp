// The blocked LU against the textbook scalar oracle (numeric/lu_reference.h).
//
// The cache-blocked factorisation reorders floating-point sums, so it is not
// bit-identical to the reference for systems wider than one panel — but it
// must agree to ~1e-13 relative on well-conditioned systems, real and
// complex, including pivot-hostile ones, and must keep the singularity and
// condition-estimate contracts of the scalar version.
#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <vector>

#include "diag/error.h"
#include "numeric/lu.h"
#include "numeric/lu_reference.h"
#include "numeric/matrix.h"

namespace rlcx {
namespace {

using C = std::complex<double>;

/// Deterministic LCG in [-1, 1); tests must not depend on libc rand.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed) {}
  double next() {
    s_ = s_ * 6364136223846793005ull + 1442695040888963407ull;
    return 2.0 * static_cast<double>(s_ >> 11) / 9007199254740992.0 - 1.0;
  }

 private:
  std::uint64_t s_;
};

/// Random diagonally-dominated system: well conditioned at every size.
Matrix<double> random_real(std::size_t n, Rng& rng) {
  Matrix<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.next();
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) += (i % 2 == 0 ? 1.0 : -1.0) * static_cast<double>(n);
  return a;
}

Matrix<C> random_complex(std::size_t n, Rng& rng) {
  Matrix<C> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = C(rng.next(), rng.next());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += C(0.25, static_cast<double>(n));
  return a;
}

template <typename T>
double max_rel_diff(const std::vector<T>& a, const std::vector<T>& b) {
  double scale = 0.0;
  for (const T& v : a) scale = std::max(scale, std::abs(v));
  if (scale == 0.0) scale = 1.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  return worst;
}

template <typename T>
double max_rel_diff(const Matrix<T>& a, const Matrix<T>& b) {
  double scale = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      scale = std::max(scale, std::abs(a(i, j)));
  if (scale == 0.0) scale = 1.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)) / scale);
  return worst;
}

// Sizes straddling the panel width (48): scalar degenerate case, one panel
// exactly, one panel plus a sliver, and several panels with a ragged tail.
const std::size_t kSizes[] = {1, 2, 3, 7, 16, 47, 48, 49, 96, 130, 200};

TEST(BlockedLu, MatchesReferenceRealAcrossSizes) {
  Rng rng(12345);
  for (const std::size_t n : kSizes) {
    Matrix<double> a = random_real(n, rng);
    std::vector<double> b(n);
    for (auto& v : b) v = rng.next();
    const LuDecomposition<double> blocked(a);
    const ReferenceLu<double> ref(a);
    EXPECT_LT(max_rel_diff(blocked.solve(b), ref.solve(b)), 1e-13)
        << "n=" << n;
  }
}

TEST(BlockedLu, MatchesReferenceComplexAcrossSizes) {
  Rng rng(99991);
  for (const std::size_t n : kSizes) {
    Matrix<C> a = random_complex(n, rng);
    std::vector<C> b(n);
    for (auto& v : b) v = C(rng.next(), rng.next());
    const LuDecomposition<C> blocked(a);
    const ReferenceLu<C> ref(a);
    EXPECT_LT(max_rel_diff(blocked.solve(b), ref.solve(b)), 1e-13)
        << "n=" << n;
  }
}

TEST(BlockedLu, BitIdenticalToReferenceWithinOnePanel) {
  // Up to the panel width the blocked code performs exactly the textbook
  // operation sequence, so the factors and solutions are bit-identical.
  Rng rng(4242);
  for (const std::size_t n : {1u, 5u, 31u, 48u}) {
    Matrix<C> a = random_complex(n, rng);
    std::vector<C> b(n);
    for (auto& v : b) v = C(rng.next(), rng.next());
    const std::vector<C> xb = LuDecomposition<C>(a).solve(b);
    const std::vector<C> xr = ReferenceLu<C>(a).solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(xb[i], xr[i]) << "n=" << n;
  }
}

TEST(BlockedLu, PivotHostileSystemAcrossPanels) {
  // Zero diagonal everywhere: every panel column must pivot.  The cyclic
  // shift structure spans panel boundaries, so swaps hit rows owned by
  // later panels.
  const std::size_t n = 130;
  Rng rng(777);
  Matrix<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = 0.01 * rng.next();
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 0.0;
    a((i + 1) % n, i) = 4.0 + static_cast<double>(i % 3);  // subdiagonal pivots
  }
  std::vector<double> b(n);
  for (auto& v : b) v = rng.next();
  const LuDecomposition<double> blocked(a);
  const ReferenceLu<double> ref(a);
  EXPECT_LT(max_rel_diff(blocked.solve(b), ref.solve(b)), 1e-13);
  // The solution really solves the system.
  const std::vector<double> r = a * blocked.solve(b);
  EXPECT_LT(max_rel_diff(r, b), 1e-12);
}

TEST(BlockedLu, MultiRhsMatchesColumnwiseSolves) {
  Rng rng(31337);
  for (const std::size_t n : {3u, 48u, 97u, 200u}) {
    const Matrix<C> a = random_complex(n, rng);
    const std::size_t nrhs = 7;
    Matrix<C> rhs(n, nrhs);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < nrhs; ++j)
        rhs(i, j) = C(rng.next(), rng.next());
    const LuDecomposition<C> lu(a);
    const Matrix<C> x = lu.solve(rhs);
    for (std::size_t j = 0; j < nrhs; ++j) {
      std::vector<C> col(n);
      for (std::size_t i = 0; i < n; ++i) col[i] = rhs(i, j);
      const std::vector<C> xc = lu.solve(col);
      double scale = 0.0, worst = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        scale = std::max(scale, std::abs(xc[i]));
      for (std::size_t i = 0; i < n; ++i)
        worst = std::max(worst, std::abs(x(i, j) - xc[i]) / scale);
      EXPECT_LT(worst, 1e-13) << "n=" << n << " col=" << j;
    }
  }
}

TEST(BlockedLu, MultiRhsResidualSmall) {
  Rng rng(2025);
  const std::size_t n = 160, nrhs = 33;  // tail block + >1 column tile shape
  const Matrix<double> a = random_real(n, rng);
  Matrix<double> rhs(n, nrhs);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < nrhs; ++j) rhs(i, j) = rng.next();
  const Matrix<double> x = LuDecomposition<double>(a).solve(rhs);
  EXPECT_LT(max_rel_diff(a * x, rhs), 1e-12);
}

TEST(BlockedLu, SingularThrowsBeyondFirstPanel) {
  // A zero column past the first panel: every trailing update subtracts an
  // exact zero there, so the pivot search at column 90 must find all-zero
  // candidates and throw — regardless of how the updates are grouped.
  const std::size_t n = 100;
  Rng rng(55);
  Matrix<double> a = random_real(n, rng);
  for (std::size_t i = 0; i < n; ++i) a(i, 90) = 0.0;
  EXPECT_THROW(LuDecomposition<double>{a}, diag::SingularSystem);
}

TEST(BlockedLu, ConditionEstimateStillSane) {
  const auto id = Matrix<double>::identity(128);
  const LuDecomposition<double> lu(id);
  EXPECT_DOUBLE_EQ(lu.condition_estimate(), 1.0);
}

TEST(BlockedLu, InverseRoundTripLarge) {
  Rng rng(808);
  const std::size_t n = 96;
  const Matrix<double> a = random_real(n, rng);
  const Matrix<double> prod = a * inverse(a);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      worst = std::max(worst,
                       std::abs(prod(i, j) - (i == j ? 1.0 : 0.0)));
  EXPECT_LT(worst, 1e-11);
}

}  // namespace
}  // namespace rlcx
