// The blocked LU against the textbook scalar oracle (numeric/lu_reference.h).
//
// The cache-blocked factorisation reorders floating-point sums, so it is not
// bit-identical to the reference for systems wider than one panel — but it
// must agree to ~1e-13 relative on well-conditioned systems, real and
// complex, including pivot-hostile ones, and must keep the singularity and
// condition-estimate contracts of the scalar version.
#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <vector>

#include <cstdlib>

#include "diag/error.h"
#include "numeric/lu.h"
#include "numeric/lu_reference.h"
#include "numeric/lu_simd.h"
#include "numeric/matrix.h"
#include "numeric/simd.h"

namespace rlcx {
namespace {

using C = std::complex<double>;

/// Deterministic LCG in [-1, 1); tests must not depend on libc rand.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed) {}
  double next() {
    s_ = s_ * 6364136223846793005ull + 1442695040888963407ull;
    return 2.0 * static_cast<double>(s_ >> 11) / 9007199254740992.0 - 1.0;
  }

 private:
  std::uint64_t s_;
};

/// Random diagonally-dominated system: well conditioned at every size.
Matrix<double> random_real(std::size_t n, Rng& rng) {
  Matrix<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.next();
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) += (i % 2 == 0 ? 1.0 : -1.0) * static_cast<double>(n);
  return a;
}

Matrix<C> random_complex(std::size_t n, Rng& rng) {
  Matrix<C> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = C(rng.next(), rng.next());
  for (std::size_t i = 0; i < n; ++i) a(i, i) += C(0.25, static_cast<double>(n));
  return a;
}

template <typename T>
double max_rel_diff(const std::vector<T>& a, const std::vector<T>& b) {
  double scale = 0.0;
  for (const T& v : a) scale = std::max(scale, std::abs(v));
  if (scale == 0.0) scale = 1.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  return worst;
}

template <typename T>
double max_rel_diff(const Matrix<T>& a, const Matrix<T>& b) {
  double scale = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      scale = std::max(scale, std::abs(a(i, j)));
  if (scale == 0.0) scale = 1.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)) / scale);
  return worst;
}

// Sizes straddling the panel width (48): scalar degenerate case, one panel
// exactly, one panel plus a sliver, and several panels with a ragged tail.
const std::size_t kSizes[] = {1, 2, 3, 7, 16, 47, 48, 49, 96, 130, 200};

TEST(BlockedLu, MatchesReferenceRealAcrossSizes) {
  Rng rng(12345);
  for (const std::size_t n : kSizes) {
    Matrix<double> a = random_real(n, rng);
    std::vector<double> b(n);
    for (auto& v : b) v = rng.next();
    const LuDecomposition<double> blocked(a);
    const ReferenceLu<double> ref(a);
    EXPECT_LT(max_rel_diff(blocked.solve(b), ref.solve(b)), 1e-13)
        << "n=" << n;
  }
}

TEST(BlockedLu, MatchesReferenceComplexAcrossSizes) {
  Rng rng(99991);
  for (const std::size_t n : kSizes) {
    Matrix<C> a = random_complex(n, rng);
    std::vector<C> b(n);
    for (auto& v : b) v = C(rng.next(), rng.next());
    const LuDecomposition<C> blocked(a);
    const ReferenceLu<C> ref(a);
    EXPECT_LT(max_rel_diff(blocked.solve(b), ref.solve(b)), 1e-13)
        << "n=" << n;
  }
}

TEST(BlockedLu, BitIdenticalToReferenceWithinOnePanel) {
  // Up to the panel width the blocked code performs exactly the textbook
  // operation sequence, so the factors and solutions are bit-identical.
  Rng rng(4242);
  for (const std::size_t n : {1u, 5u, 31u, 48u}) {
    Matrix<C> a = random_complex(n, rng);
    std::vector<C> b(n);
    for (auto& v : b) v = C(rng.next(), rng.next());
    const std::vector<C> xb = LuDecomposition<C>(a).solve(b);
    const std::vector<C> xr = ReferenceLu<C>(a).solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(xb[i], xr[i]) << "n=" << n;
  }
}

TEST(BlockedLu, PivotHostileSystemAcrossPanels) {
  // Zero diagonal everywhere: every panel column must pivot.  The cyclic
  // shift structure spans panel boundaries, so swaps hit rows owned by
  // later panels.
  const std::size_t n = 130;
  Rng rng(777);
  Matrix<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = 0.01 * rng.next();
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 0.0;
    a((i + 1) % n, i) = 4.0 + static_cast<double>(i % 3);  // subdiagonal pivots
  }
  std::vector<double> b(n);
  for (auto& v : b) v = rng.next();
  const LuDecomposition<double> blocked(a);
  const ReferenceLu<double> ref(a);
  EXPECT_LT(max_rel_diff(blocked.solve(b), ref.solve(b)), 1e-13);
  // The solution really solves the system.
  const std::vector<double> r = a * blocked.solve(b);
  EXPECT_LT(max_rel_diff(r, b), 1e-12);
}

TEST(BlockedLu, MultiRhsMatchesColumnwiseSolves) {
  Rng rng(31337);
  for (const std::size_t n : {3u, 48u, 97u, 200u}) {
    const Matrix<C> a = random_complex(n, rng);
    const std::size_t nrhs = 7;
    Matrix<C> rhs(n, nrhs);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < nrhs; ++j)
        rhs(i, j) = C(rng.next(), rng.next());
    const LuDecomposition<C> lu(a);
    const Matrix<C> x = lu.solve(rhs);
    for (std::size_t j = 0; j < nrhs; ++j) {
      std::vector<C> col(n);
      for (std::size_t i = 0; i < n; ++i) col[i] = rhs(i, j);
      const std::vector<C> xc = lu.solve(col);
      double scale = 0.0, worst = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        scale = std::max(scale, std::abs(xc[i]));
      for (std::size_t i = 0; i < n; ++i)
        worst = std::max(worst, std::abs(x(i, j) - xc[i]) / scale);
      EXPECT_LT(worst, 1e-13) << "n=" << n << " col=" << j;
    }
  }
}

TEST(BlockedLu, MultiRhsResidualSmall) {
  Rng rng(2025);
  const std::size_t n = 160, nrhs = 33;  // tail block + >1 column tile shape
  const Matrix<double> a = random_real(n, rng);
  Matrix<double> rhs(n, nrhs);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < nrhs; ++j) rhs(i, j) = rng.next();
  const Matrix<double> x = LuDecomposition<double>(a).solve(rhs);
  EXPECT_LT(max_rel_diff(a * x, rhs), 1e-12);
}

TEST(BlockedLu, SingularThrowsBeyondFirstPanel) {
  // A zero column past the first panel: every trailing update subtracts an
  // exact zero there, so the pivot search at column 90 must find all-zero
  // candidates and throw — regardless of how the updates are grouped.
  const std::size_t n = 100;
  Rng rng(55);
  Matrix<double> a = random_real(n, rng);
  for (std::size_t i = 0; i < n; ++i) a(i, 90) = 0.0;
  EXPECT_THROW(LuDecomposition<double>{a}, diag::SingularSystem);
}

TEST(BlockedLu, ConditionEstimateStillSane) {
  const auto id = Matrix<double>::identity(128);
  const LuDecomposition<double> lu(id);
  EXPECT_DOUBLE_EQ(lu.condition_estimate(), 1.0);
}

TEST(BlockedLu, InverseRoundTripLarge) {
  Rng rng(808);
  const std::size_t n = 96;
  const Matrix<double> a = random_real(n, rng);
  const Matrix<double> prod = a * inverse(a);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      worst = std::max(worst,
                       std::abs(prod(i, j) - (i == j ? 1.0 : 0.0)));
  EXPECT_LT(worst, 1e-11);
}

// ---------------------------------------------------------------------------
// The runtime-dispatched rank-4 micro-kernel (numeric/lu_simd.h): the AVX2
// body must be BIT-identical to the portable body — not merely close — so a
// factorisation does not depend on which ISA served it.

/// Forces a SIMD mode for the scope, restoring the environment policy.
class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(numeric::SimdMode m) { numeric::simd_force_mode(m); }
  ~ScopedSimdMode() {
    numeric::simd_force_mode(
        numeric::simd_mode_from_env(std::getenv("RLCX_SIMD")));
  }
};

#if defined(RLCX_HAVE_AVX2)
TEST(LuSimd, RankUpdateRealAvx2BitIdenticalToScalar) {
  if (!numeric::simd_avx2_supported())
    GTEST_SKIP() << "no AVX2 on this machine/build";
  Rng rng(60601);
  constexpr std::size_t kCols = 53;  // odd: exercises the vector tail
  constexpr std::size_t kRows = 7;   // 4-wide chunk + 3-long scalar tail
  std::vector<std::vector<double>> rows(kRows, std::vector<double>(kCols));
  std::vector<const double*> src;
  for (auto& r : rows) {
    for (double& v : r) v = rng.next();
    src.push_back(r.data());
  }
  std::vector<double> coef(kRows);
  for (double& v : coef) v = rng.next();
  coef[5] = 0.0;  // the tail loop's zero-coefficient skip
  for (const std::size_t m : {1u, 3u, 4u, 5u, 7u}) {
    for (const std::size_t cbeg : {0u, 1u, 5u}) {
      std::vector<double> ds(kCols), dv(kCols);
      for (std::size_t c = 0; c < kCols; ++c) ds[c] = dv[c] = rng.next();
      numeric::lu_scalar::rank_update(ds.data(), src.data(), coef.data(), m,
                                      cbeg, kCols);
      numeric::lu_avx2::rank_update(dv.data(), src.data(), coef.data(), m,
                                    cbeg, kCols);
      for (std::size_t c = 0; c < kCols; ++c)
        EXPECT_EQ(ds[c], dv[c]) << "m=" << m << " cbeg=" << cbeg
                                << " c=" << c;
    }
  }
}

TEST(LuSimd, RankUpdateComplexAvx2BitIdenticalToScalar) {
  if (!numeric::simd_avx2_supported())
    GTEST_SKIP() << "no AVX2 on this machine/build";
  Rng rng(60602);
  constexpr std::size_t kCols = 31;  // odd: one 128-bit complex tail lane
  constexpr std::size_t kRows = 6;
  std::vector<std::vector<C>> rows(kRows, std::vector<C>(kCols));
  std::vector<const C*> src;
  for (auto& r : rows) {
    for (C& v : r) v = C(rng.next(), rng.next());
    src.push_back(r.data());
  }
  std::vector<C> coef(kRows);
  for (C& v : coef) v = C(rng.next(), rng.next());
  coef[4] = C(0.0, 0.0);
  for (const std::size_t m : {1u, 2u, 4u, 6u}) {
    for (const std::size_t cbeg : {0u, 1u, 4u}) {
      std::vector<C> ds(kCols), dv(kCols);
      for (std::size_t c = 0; c < kCols; ++c)
        ds[c] = dv[c] = C(rng.next(), rng.next());
      numeric::lu_scalar::rank_update(ds.data(), src.data(), coef.data(), m,
                                      cbeg, kCols);
      numeric::lu_avx2::rank_update(dv.data(), src.data(), coef.data(), m,
                                    cbeg, kCols);
      for (std::size_t c = 0; c < kCols; ++c)
        EXPECT_EQ(ds[c], dv[c]) << "m=" << m << " cbeg=" << cbeg
                                << " c=" << c;
    }
  }
}
#endif  // RLCX_HAVE_AVX2

TEST(LuSimd, PivotHostileFactorizationAgreesAcrossSimdModes) {
  // The full blocked LU through the dispatcher, both modes, on a system
  // where every panel column pivots across panel boundaries: each mode
  // must match the textbook oracle to 1e-13, and each other bit for bit.
  const std::size_t n = 130;
  Rng rng(777);
  Matrix<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = 0.01 * rng.next();
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 0.0;
    a((i + 1) % n, i) = 4.0 + static_cast<double>(i % 3);
  }
  std::vector<double> b(n);
  for (auto& v : b) v = rng.next();
  const std::vector<double> oracle = ReferenceLu<double>(a).solve(b);

  std::vector<double> x_scalar;
  {
    ScopedSimdMode mode(numeric::SimdMode::kScalar);
    x_scalar = LuDecomposition<double>(a).solve(b);
  }
  EXPECT_LT(max_rel_diff(x_scalar, oracle), 1e-13);
  if (!numeric::simd_avx2_supported())
    GTEST_SKIP() << "no AVX2 on this machine/build";
  std::vector<double> x_avx2;
  {
    ScopedSimdMode mode(numeric::SimdMode::kAvx2);
    x_avx2 = LuDecomposition<double>(a).solve(b);
  }
  EXPECT_LT(max_rel_diff(x_avx2, oracle), 1e-13);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x_scalar[i], x_avx2[i]);
}

TEST(LuSimd, ComplexMultiRhsAgreesAcrossSimdModes) {
  // The multi-RHS substitutions drive the same micro-kernel; complex with
  // a ragged RHS tile must also be mode-independent bit for bit.
  Rng rng(424243);
  const std::size_t n = 97, nrhs = 5;
  const Matrix<C> a = random_complex(n, rng);
  Matrix<C> rhs(n, nrhs);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < nrhs; ++j)
      rhs(i, j) = C(rng.next(), rng.next());

  Matrix<C> x_scalar(0, 0);
  {
    ScopedSimdMode mode(numeric::SimdMode::kScalar);
    x_scalar = LuDecomposition<C>(a).solve(rhs);
  }
  const ReferenceLu<C> ref(a);
  for (std::size_t j = 0; j < nrhs; ++j) {
    std::vector<C> col(n), xcol(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = rhs(i, j);
    const std::vector<C> xr = ref.solve(col);
    for (std::size_t i = 0; i < n; ++i) xcol[i] = x_scalar(i, j);
    EXPECT_LT(max_rel_diff(xcol, xr), 1e-13) << "col=" << j;
  }
  if (!numeric::simd_avx2_supported())
    GTEST_SKIP() << "no AVX2 on this machine/build";
  Matrix<C> x_avx2(0, 0);
  {
    ScopedSimdMode mode(numeric::SimdMode::kAvx2);
    x_avx2 = LuDecomposition<C>(a).solve(rhs);
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < nrhs; ++j)
      EXPECT_EQ(x_scalar(i, j), x_avx2(i, j));
}

}  // namespace
}  // namespace rlcx
