// Additional solver coverage: stripline, plane options, meshing choices,
// axis isotropy and mixed-orientation networks.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/builders.h"
#include "numeric/units.h"
#include "peec/partial_inductance.h"
#include "solver/block_solver.h"
#include "solver/network.h"

namespace rlcx::solver {
namespace {

using geom::PlaneConfig;
using geom::Technology;
using units::um;

const Technology& tech() {
  static const Technology t = Technology::generic_025um();
  return t;
}

TEST(Stripline, TwoPlanesBeatOnePlane) {
  // A second return plane above can only lower the loop inductance.
  SolveOptions opt;
  opt.frequency = 3.2e9;
  opt.plane.strips = 9;
  const auto ms = geom::microstrip(tech(), 6, um(1500), um(6), um(6), um(1));
  const auto sl = geom::stripline(tech(), 6, um(1500), um(6), um(6), um(1));
  const double l_ms = extract_loop(ms, opt).inductance(0, 0);
  const double l_sl = extract_loop(sl, opt).inductance(0, 0);
  EXPECT_LT(l_sl, l_ms);
  EXPECT_GT(l_sl, 0.0);
}

TEST(Stripline, PlaneAboveOnlyWorksToo) {
  SolveOptions opt;
  opt.frequency = 3.2e9;
  opt.plane.strips = 9;
  const auto blk = geom::single_trace(tech(), 6, um(1000), um(6),
                                      PlaneConfig::kAbove);
  const LoopResult r = extract_loop(blk, opt);
  EXPECT_GT(r.inductance(0, 0), 0.0);
  EXPECT_GT(r.resistance(0, 0), 0.0);
}

TEST(PlaneOptions, MoreStripsConvergeLoopL) {
  // Refining the plane discretisation must converge: 25 -> 35 strips moves
  // the result far less than 7 -> 13.
  const auto ms = geom::microstrip(tech(), 6, um(1000), um(6), um(6), um(1));
  auto with_strips = [&](int n) {
    SolveOptions opt;
    opt.frequency = 3.2e9;
    opt.plane.strips = n;
    return extract_loop(ms, opt).inductance(0, 0);
  };
  const double l7 = with_strips(7);
  const double l13 = with_strips(13);
  const double l25 = with_strips(25);
  const double l35 = with_strips(35);
  EXPECT_LT(std::abs(l35 - l25), std::abs(l13 - l7) + 1e-15);
  EXPECT_NEAR(l35, l25, 0.02 * l25);
}

TEST(PlaneOptions, MarginFloorRespected) {
  const auto ms = geom::microstrip(tech(), 6, um(1000), um(6), um(6), um(1));
  PlaneOptions popt;
  popt.margin_factor = 0.1;  // absurdly small: the floor must kick in
  popt.min_margin = um(25);
  const auto strips = plane_strips(ms, ms.plane_layer_below(), popt);
  EXPECT_LE(strips.front().t_min, ms.trace(0).x_left() - um(25) + 1e-12);
}

TEST(Meshing, AutoMatchesManualAtLowFrequency) {
  // At 1 MHz the skin depth dwarfs the wires: auto meshing picks a single
  // filament and must equal an explicit 1x1 mesh.
  const auto blk =
      geom::coplanar_waveguide(tech(), 6, um(800), um(6), um(6), um(1));
  SolveOptions autoo;
  autoo.frequency = 1e6;
  SolveOptions manual = autoo;
  manual.auto_mesh = false;
  manual.mesh.nw = 1;
  manual.mesh.nt = 1;
  EXPECT_NEAR(extract_loop(blk, autoo).inductance(0, 0),
              extract_loop(blk, manual).inductance(0, 0), 1e-15);
}

TEST(Meshing, FinerCrossSectionConvergesAtHighFrequency) {
  const auto blk =
      geom::coplanar_waveguide(tech(), 6, um(800), um(10), um(10), um(1));
  auto with_mesh = [&](int n) {
    SolveOptions opt;
    opt.frequency = 10e9;
    opt.auto_mesh = false;
    opt.mesh.nw = n;
    opt.mesh.nt = 2;
    return extract_loop(blk, opt).resistance(0, 0);
  };
  const double r2 = with_mesh(2);
  const double r4 = with_mesh(4);
  const double r6 = with_mesh(6);
  // Refinement changes less and less.
  EXPECT_LT(std::abs(r6 - r4), std::abs(r4 - r2) + 1e-12);
}

TEST(TwoSignalLoop, MatrixShapeAndReciprocity) {
  // Two signals sharing the shields: full 2x2 loop matrix.
  std::vector<geom::Trace> traces{
      {geom::TraceRole::kGround, um(4), -um(9), "gl"},
      {geom::TraceRole::kSignal, um(4), -um(3), "s1"},
      {geom::TraceRole::kSignal, um(4), um(3), "s2"},
      {geom::TraceRole::kGround, um(4), um(9), "gr"},
  };
  const geom::Block blk(&tech(), 6, um(1000), std::move(traces),
                        PlaneConfig::kNone);
  SolveOptions opt;
  opt.frequency = 1e9;
  const LoopResult r = extract_loop(blk, opt);
  ASSERT_EQ(r.inductance.rows(), 2u);
  EXPECT_NEAR(r.inductance(0, 1), r.inductance(1, 0),
              1e-9 * r.inductance(0, 0));
  // Symmetric structure: equal diagonals.
  EXPECT_NEAR(r.inductance(0, 0), r.inductance(1, 1),
              1e-6 * r.inductance(0, 0));
  // Shared return couples the loops positively.
  EXPECT_GT(r.inductance(0, 1), 0.0);
  EXPECT_LT(r.inductance(0, 1), r.inductance(0, 0));
}

TEST(NetworkAxes, XAndYLoopsAreIsotropic) {
  // The same two-wire loop built along x and along y must agree exactly.
  peec::MeshOptions m1;
  m1.nw = 1;
  m1.nt = 1;
  auto loop_along = [&](peec::Axis axis) {
    Network net;
    const int a = net.add_node();
    const int far = net.add_node();
    const int b = net.add_node();
    auto bar = [&](double offset) {
      peec::Bar w;
      w.axis = axis;
      w.length = um(700);
      w.t_min = offset;
      w.t_width = um(3);
      w.z_min = tech().layer(6).z_bottom;
      w.z_thick = tech().layer(6).thickness;
      return w;
    };
    net.add_segment(a, far, bar(0.0), 2e-8, m1, true);
    net.add_segment(far, b, bar(um(8)), 2e-8, m1, false);
    return net.loop_impedance(a, b, 1e8).inductance;
  };
  EXPECT_NEAR(loop_along(peec::Axis::kY), loop_along(peec::Axis::kX),
              1e-12 * loop_along(peec::Axis::kY));
}

TEST(NetworkAxes, PerpendicularLegsAddWithoutCoupling) {
  // An L-shaped loop (y-leg then x-leg) has no mutual between the legs, so
  // its inductance is the sum of the two straight loops'.
  peec::MeshOptions m1;
  m1.nw = 1;
  m1.nt = 1;
  const double z0 = tech().layer(6).z_bottom;
  const double zt = tech().layer(6).thickness;
  auto bar = [&](peec::Axis axis, double a0, double len, double t_min) {
    peec::Bar w;
    w.axis = axis;
    w.a_min = a0;
    w.length = len;
    w.t_min = t_min;
    w.t_width = um(3);
    w.z_min = z0;
    w.z_thick = zt;
    return w;
  };

  auto straight = [&](peec::Axis axis, double len) {
    Network net;
    const int a = net.add_node();
    const int far = net.add_node();
    const int b = net.add_node();
    net.add_segment(a, far, bar(axis, 0.0, len, 0.0), 2e-8, m1, true);
    net.add_segment(far, b, bar(axis, 0.0, len, um(8)), 2e-8, m1, false);
    return net.loop_impedance(a, b, 1e8).inductance;
  };

  Network lshape;
  const int a = lshape.add_node();
  const int mid_s = lshape.add_node();
  const int mid_g = lshape.add_node();
  const int far = lshape.add_node();
  const int b = lshape.add_node();
  // y-leg.
  lshape.add_segment(a, mid_s, bar(peec::Axis::kY, 0.0, um(500), 0.0), 2e-8,
                     m1, true);
  lshape.add_segment(mid_g, b, bar(peec::Axis::kY, 0.0, um(500), um(8)),
                     2e-8, m1, false);
  // x-leg, far from the y-leg so residual coupling vanishes.
  lshape.add_segment(mid_s, far, bar(peec::Axis::kX, um(1000), um(400),
                                     um(2000)),
                     2e-8, m1, true);
  lshape.add_segment(far, mid_g, bar(peec::Axis::kX, um(1000), um(400),
                                     um(2008)),
                     2e-8, m1, false);
  const double sum =
      straight(peec::Axis::kY, um(500)) + straight(peec::Axis::kX, um(400));
  EXPECT_NEAR(lshape.loop_impedance(a, b, 1e8).inductance, sum, 0.01 * sum);
}

}  // namespace
}  // namespace rlcx::solver
