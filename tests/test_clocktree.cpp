// Tests for the H-tree generator, whole-tree netlist and skew analysis.
#include <gtest/gtest.h>

#include "clocktree/skew.h"
#include "numeric/units.h"
#include "solver/frequency.h"

namespace rlcx::clocktree {
namespace {

using geom::PlaneConfig;
using geom::Technology;
using units::um;

const Technology& tech() {
  static const Technology t = Technology::generic_025um();
  return t;
}

core::InductanceLibrary library_for(const HTreeSpec& spec) {
  solver::SolveOptions sopt;
  sopt.frequency = solver::significant_frequency(spec.driver.t_rise);
  sopt.max_filaments_per_dim = 2;
  sopt.plane.strips = 9;
  core::InductanceLibrary lib;
  for (std::size_t i = 0; i < spec.levels.size(); ++i) {
    const int layer = spec.level_layer(i);
    const geom::PlaneConfig planes = spec.levels[i].planes;
    if (lib.has(layer, planes)) continue;
    lib.add(layer, planes,
            std::make_shared<core::DirectInductanceModel>(&tech(), layer,
                                                          planes, sopt));
  }
  return lib;
}

HTreeSpec small_tree() {
  HTreeSpec spec = example_cpw_tree();
  spec.levels.resize(2);  // 2 levels -> 2 sinks, fast tests
  return spec;
}

TEST(HTreeSpec, Bookkeeping) {
  const HTreeSpec spec = example_cpw_tree();
  EXPECT_EQ(spec.levels.size(), 3u);
  EXPECT_EQ(spec.sink_count(), 4u);
  EXPECT_NEAR(spec.root_to_leaf_length(), um(3000 + 1500 + 800), 1e-12);
  // Shields satisfy the cascading precondition at every level.
  for (const LevelSpec& lv : spec.levels)
    EXPECT_GE(lv.ground_width, lv.signal_width);
}

TEST(HTreeSpec, MicrostripVariantHasPlanes) {
  const HTreeSpec spec = example_microstrip_tree();
  for (const LevelSpec& lv : spec.levels)
    EXPECT_EQ(lv.planes, PlaneConfig::kBelow);
}

TEST(HTreeSpec, LevelBlockGeometry) {
  const HTreeSpec spec = example_cpw_tree();
  const geom::Block blk = level_block(tech(), spec, 0);
  ASSERT_EQ(blk.size(), 3u);
  EXPECT_EQ(blk.trace(1).role, geom::TraceRole::kSignal);
  EXPECT_NEAR(blk.length(), spec.levels[0].length, 1e-12);
  EXPECT_NEAR(blk.spacing(0, 1), spec.levels[0].spacing, 1e-12);
  EXPECT_THROW(level_block(tech(), spec, 9), std::out_of_range);
}

TEST(TreeNetlist, TopologyMatchesSpec) {
  const HTreeSpec spec = small_tree();
  const core::InductanceLibrary lib = library_for(spec);
  core::LadderOptions lopt;
  lopt.sections = 2;
  const TreeNetlist tree = build_tree_netlist(tech(), spec, lib, lopt);
  EXPECT_EQ(tree.sinks.size(), spec.sink_count());
  EXPECT_GT(tree.netlist.node_count(), 4);
  EXPECT_EQ(tree.netlist.vsources().size(), 1u);
  // One sink cap per leaf plus the wire capacitance.
  EXPECT_GE(tree.netlist.capacitors().size(), spec.sink_count());
}

TEST(TreeNetlist, EmptySpecThrows) {
  HTreeSpec spec = small_tree();
  spec.levels.clear();
  const core::InductanceLibrary lib;
  EXPECT_THROW(build_tree_netlist(tech(), spec, lib, {}),
               std::invalid_argument);
}

TEST(TreeNetlist, MissingProviderThrows) {
  const HTreeSpec spec = small_tree();
  const core::InductanceLibrary empty;
  EXPECT_THROW(build_tree_netlist(tech(), spec, empty, {}),
               std::out_of_range);
}

TEST(Skew, BalancedTreeHasPositiveDelaysAndSmallSkew) {
  HTreeSpec spec = small_tree();
  spec.sink_cap_mismatch = 0.0;  // perfectly balanced
  const core::InductanceLibrary lib = library_for(spec);
  AnalysisOptions aopt;
  aopt.ladder.sections = 3;
  const SkewResult r = analyze_skew(tech(), spec, lib, aopt);
  ASSERT_EQ(r.sink_delays.size(), spec.sink_count());
  for (double d : r.sink_delays) EXPECT_GT(d, 0.0);
  // Identical branches: skew is numerically zero.
  EXPECT_LT(r.skew, 0.01e-12);
}

TEST(Skew, LoadMismatchCreatesSkew) {
  HTreeSpec spec = small_tree();
  spec.sink_cap_mismatch = 1.0;
  const core::InductanceLibrary lib = library_for(spec);
  AnalysisOptions aopt;
  aopt.ladder.sections = 3;
  const SkewResult r = analyze_skew(tech(), spec, lib, aopt);
  EXPECT_GT(r.skew, 0.1e-12);
  EXPECT_NEAR(r.skew, r.max_delay - r.min_delay, 1e-18);
}

TEST(TwoLayerTree, LayersResolveAndViasStamped) {
  HTreeSpec spec = example_two_layer_tree();
  spec.levels.resize(2);
  EXPECT_EQ(spec.level_layer(0), 6);
  EXPECT_EQ(spec.level_layer(1), 5);
  EXPECT_THROW(spec.level_layer(9), std::out_of_range);

  const core::InductanceLibrary lib = library_for(spec);
  core::LadderOptions lopt;
  lopt.sections = 2;
  const TreeNetlist with_via = build_tree_netlist(tech(), spec, lib, lopt);

  HTreeSpec no_via = spec;
  no_via.via.resistance = 0.0;
  const TreeNetlist without = build_tree_netlist(tech(), no_via, lib, lopt);
  // One extra resistor per level-1 branch (2 branches).
  EXPECT_EQ(with_via.netlist.resistors().size(),
            without.netlist.resistors().size() + 2);
}

TEST(TwoLayerTree, ViaResistanceSlowsTheClock) {
  HTreeSpec spec = example_two_layer_tree();
  spec.levels.resize(2);
  const core::InductanceLibrary lib = library_for(spec);
  AnalysisOptions aopt;
  aopt.ladder.sections = 3;
  spec.via.resistance = 0.0;
  const SkewResult fast = analyze_skew(tech(), spec, lib, aopt);
  spec.via.resistance = 25.0;  // pathological single via
  const SkewResult slow = analyze_skew(tech(), spec, lib, aopt);
  EXPECT_GT(slow.max_arrival, fast.max_arrival);
}

TEST(TwoLayerTree, LevelBlocksLiveOnTheirLayers) {
  const HTreeSpec spec = example_two_layer_tree();
  EXPECT_EQ(level_block(tech(), spec, 0).layer_index(), 6);
  EXPECT_EQ(level_block(tech(), spec, 1).layer_index(), 5);
}

TEST(Skew, RcVsRlcShapesMatchPaper) {
  const HTreeSpec spec = small_tree();
  const core::InductanceLibrary lib = library_for(spec);
  AnalysisOptions aopt;
  aopt.ladder.sections = 3;
  const RcVsRlc cmp = compare_rc_rlc(tech(), spec, lib, aopt);
  // Inductance delays the sinks and creates overshoot the RC netlist
  // cannot produce (Section V / Figures 2-3).
  EXPECT_GT(cmp.rlc.max_delay, cmp.rc.max_delay);
  EXPECT_GT(cmp.rlc.max_overshoot, cmp.rc.max_overshoot);
  EXPECT_LT(cmp.rc.max_overshoot, 1e-3);
  // The paper's >10% claim, on the max delay.
  const double diff =
      (cmp.rlc.max_delay - cmp.rc.max_delay) / cmp.rlc.max_delay;
  EXPECT_GT(diff, 0.10);
}

}  // namespace
}  // namespace rlcx::clocktree
