// Cross-module property sweeps (parameterised): physical invariants that
// must hold over whole regions of the geometry/parameter space, not just at
// hand-picked points.
#include <gtest/gtest.h>

#include <cmath>

#include "cap/extractor.h"
#include "ckt/transient.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "peec/partial_inductance.h"
#include "solver/block_solver.h"

namespace rlcx {
namespace {

using geom::Technology;
using units::um;

const Technology& tech() {
  static const Technology t = Technology::generic_025um();
  return t;
}

// ---------------------------------------------------------------- PEEC --

struct PairGeom {
  double w1_um, w2_um, s_um, l_um;
};

class PeecPairSweep : public ::testing::TestWithParam<PairGeom> {};

TEST_P(PeecPairSweep, PassivityAndSymmetry) {
  const PairGeom g = GetParam();
  peec::Bar a;
  a.t_width = um(g.w1_um);
  a.z_thick = um(2);
  a.length = um(g.l_um);
  peec::Bar b = a;
  b.t_width = um(g.w2_um);
  b.t_min = um(g.w1_um + g.s_um);

  const double l1 = peec::self_partial(a);
  const double l2 = peec::self_partial(b);
  const double m12 = peec::mutual_partial(a, b);
  const double m21 = peec::mutual_partial(b, a);

  EXPECT_GT(l1, 0.0);
  EXPECT_GT(l2, 0.0);
  EXPECT_GT(m12, 0.0);
  // Exchange symmetry.
  EXPECT_NEAR(m12, m21, 1e-6 * m12);
  // Passivity (2x2 Lp matrix positive definite): M < sqrt(L1 L2).
  EXPECT_LT(m12, std::sqrt(l1 * l2));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PeecPairSweep,
    ::testing::Values(PairGeom{1.0, 1.0, 0.5, 200.0},
                      PairGeom{10.0, 5.0, 1.0, 6000.0},
                      PairGeom{2.0, 18.0, 4.0, 1500.0},
                      PairGeom{8.0, 8.0, 0.3, 800.0},
                      PairGeom{1.2, 1.2, 1.2, 100.0},
                      PairGeom{20.0, 20.0, 10.0, 4000.0}));

// --------------------------------------------------------------- solver --

class LoopFrequencySweep : public ::testing::TestWithParam<double> {};

TEST_P(LoopFrequencySweep, MonotoneSkinEffect) {
  // R(f) never decreases and L(f) never increases with frequency.
  const double f = GetParam();
  const geom::Block blk =
      geom::coplanar_waveguide(tech(), 6, um(1500), um(10), um(10), um(1));
  solver::SolveOptions lo, hi;
  lo.frequency = f;
  hi.frequency = 2.0 * f;
  const solver::LoopResult a = solver::extract_loop(blk, lo);
  const solver::LoopResult b = solver::extract_loop(blk, hi);
  EXPECT_LE(a.resistance(0, 0), b.resistance(0, 0) * (1.0 + 1e-9));
  EXPECT_GE(a.inductance(0, 0), b.inductance(0, 0) * (1.0 - 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Frequencies, LoopFrequencySweep,
                         ::testing::Values(1e8, 4e8, 1.6e9, 6.4e9, 12.8e9));

class LoopMatrixSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LoopMatrixSweep, PositiveDefiniteLoopMatrix) {
  // The loop inductance matrix of an n-signal array over a plane stores
  // magnetic energy: x^T L x > 0 for every test vector.
  const std::size_t n = GetParam();
  const geom::Block arr = geom::uniform_array(
      tech(), 6, um(1000), n, um(3), um(3), geom::PlaneConfig::kBelow);
  solver::SolveOptions opt;
  opt.frequency = 3.2e9;
  opt.plane.strips = 9;
  const solver::LoopResult r = solver::extract_loop(arr, opt);
  for (int trial = 0; trial < 12; ++trial) {
    double energy = 0.0;
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
      x[i] = std::sin(static_cast<double>(trial * 13 + 5 * i + 1));
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        energy += x[i] * r.inductance(i, j) * x[j];
    EXPECT_GT(energy, 0.0) << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(ArraySizes, LoopMatrixSweep,
                         ::testing::Values<std::size_t>(1, 2, 3, 5));

// ------------------------------------------------------------------ cap --

class CapWidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(CapWidthSweep, GroundCapGrowsWithWidth) {
  const double w = GetParam();
  const auto narrow = geom::single_trace(tech(), 6, um(1000), um(w));
  const auto wide = geom::single_trace(tech(), 6, um(1000), um(w * 1.5));
  EXPECT_LT(cap::extract_cap(narrow).cg[0], cap::extract_cap(wide).cg[0]);
}

INSTANTIATE_TEST_SUITE_P(Widths, CapWidthSweep,
                         ::testing::Values(1.0, 2.0, 5.0, 10.0, 20.0));

// ------------------------------------------------------------------ ckt --

struct RcCase {
  double r_ohm, c_ff;
};

class RcDelaySweep : public ::testing::TestWithParam<RcCase> {};

TEST_P(RcDelaySweep, FiftyPercentDelayIsLn2Tau) {
  const RcCase c = GetParam();
  const double tau = c.r_ohm * c.c_ff * 1e-15;
  ckt::Netlist nl;
  const auto in = nl.add_node();
  const auto out = nl.add_node();
  nl.add_vsource(in, ckt::kGround,
                 ckt::SourceWaveform::ramp(1.0, tau / 500.0));
  nl.add_resistor(in, out, c.r_ohm);
  nl.add_capacitor(out, ckt::kGround, c.c_ff * 1e-15);
  ckt::TransientOptions topt;
  topt.t_stop = 6.0 * tau;
  topt.dt = tau / 400.0;
  const auto t50 =
      ckt::simulate(nl, topt).waveform(out).first_rise_through(0.5);
  ASSERT_TRUE(t50.has_value());
  EXPECT_NEAR(*t50, std::log(2.0) * tau, 0.02 * tau)
      << "R=" << c.r_ohm << " C=" << c.c_ff;
}

INSTANTIATE_TEST_SUITE_P(RcValues, RcDelaySweep,
                         ::testing::Values(RcCase{10.0, 100.0},
                                           RcCase{100.0, 100.0},
                                           RcCase{1000.0, 50.0},
                                           RcCase{40.0, 2000.0},
                                           RcCase{5000.0, 1000.0}));

class LadderSectionSweep : public ::testing::TestWithParam<int> {};

TEST_P(LadderSectionSweep, ElmoreDelayIndependentOfSections) {
  // Distributed-RC Elmore delay R*C/2 + R*Cload is section-count invariant;
  // the simulated 50% delay must converge and stay within a narrow band
  // for every ladder discretisation.
  const int sections = GetParam();
  const double r_total = 100.0, c_total = 1e-12;
  ckt::Netlist nl;
  const auto in = nl.add_node();
  nl.add_vsource(in, ckt::kGround, ckt::SourceWaveform::ramp(1.0, 1e-12));
  ckt::NodeId prev = in;
  for (int k = 0; k < sections; ++k) {
    const auto next = nl.add_node();
    nl.add_resistor(prev, next, r_total / sections);
    nl.add_capacitor(next, ckt::kGround, c_total / sections);
    prev = next;
  }
  ckt::TransientOptions topt;
  topt.t_stop = 1e-9;
  topt.dt = 0.1e-12;
  const auto t50 =
      ckt::simulate(nl, topt).waveform(prev).first_rise_through(0.5);
  ASSERT_TRUE(t50.has_value());
  // Distributed limit: 0.38 R C ~ 38 ps; lumped (1 section): 0.69 RC.
  EXPECT_GT(*t50, 0.3 * r_total * c_total);
  EXPECT_LT(*t50, 0.75 * r_total * c_total);
  if (sections >= 8) {
    EXPECT_NEAR(*t50, 0.38 * r_total * c_total, 0.06 * r_total * c_total);
  }
}

INSTANTIATE_TEST_SUITE_P(Sections, LadderSectionSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace rlcx
