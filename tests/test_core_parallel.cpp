// Parallel table building must be bit-identical to the serial build.
#include <gtest/gtest.h>

#include <thread>

#include "core/table_builder.h"
#include "numeric/units.h"
#include "peec/assembly.h"
#include "peec/mesh.h"
#include "rt/pool.h"
#include "solver/frequency.h"

namespace rlcx::core {
namespace {

using units::um;

TEST(ParallelBuild, IdenticalToSerial) {
  const geom::Technology tech = geom::Technology::generic_025um();
  solver::SolveOptions opt;
  opt.frequency = solver::significant_frequency(100e-12);
  opt.max_filaments_per_dim = 2;
  TableGrid grid;
  grid.widths = {um(2), um(5), um(12)};
  grid.spacings = {um(1), um(4)};
  grid.lengths = {um(300), um(1200)};

  const InductanceTables serial =
      build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt, 1);
  const InductanceTables parallel =
      build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt, 4);

  ASSERT_EQ(serial.mutual.values().size(), parallel.mutual.values().size());
  for (std::size_t i = 0; i < serial.mutual.values().size(); ++i)
    EXPECT_DOUBLE_EQ(serial.mutual.values()[i], parallel.mutual.values()[i]);
  for (std::size_t i = 0; i < serial.self.values().size(); ++i)
    EXPECT_DOUBLE_EQ(serial.self.values()[i], parallel.self.values()[i]);
  for (std::size_t i = 0; i < serial.series_r.values().size(); ++i)
    EXPECT_DOUBLE_EQ(serial.series_r.values()[i],
                     parallel.series_r.values()[i]);
}

TEST(ParallelBuild, BitIdenticalAcrossThreadCounts) {
  const geom::Technology tech = geom::Technology::generic_025um();
  solver::SolveOptions opt;
  opt.frequency = solver::significant_frequency(100e-12);
  opt.max_filaments_per_dim = 2;
  TableGrid grid;
  grid.widths = {um(2), um(6)};
  grid.spacings = {um(1), um(3)};
  grid.lengths = {um(300), um(900)};

  BuildStats serial_stats;
  const InductanceTables serial = build_tables(
      tech, 6, geom::PlaneConfig::kNone, grid, opt, 1, &serial_stats);
  EXPECT_EQ(serial_stats.threads, 1);
  EXPECT_EQ(serial_stats.grid_points, 2u * 2u * 2u * 2u);
  EXPECT_EQ(serial_stats.solves, serial_stats.grid_points);
  EXPECT_GE(serial_stats.wall_seconds, 0.0);

  const unsigned hw = std::thread::hardware_concurrency();
  const int counts[] = {2, 7, hw > 0 ? static_cast<int>(hw) : 1};
  for (const int threads : counts) {
    BuildStats stats;
    const InductanceTables t = build_tables(
        tech, 6, geom::PlaneConfig::kNone, grid, opt, threads, &stats);
    EXPECT_EQ(stats.threads, threads) << threads;
    EXPECT_EQ(stats.solves, serial_stats.solves) << threads;
    ASSERT_EQ(t.mutual.values().size(), serial.mutual.values().size());
    for (std::size_t i = 0; i < serial.mutual.values().size(); ++i)
      EXPECT_EQ(serial.mutual.values()[i], t.mutual.values()[i])
          << "threads=" << threads << " i=" << i;
    for (std::size_t i = 0; i < serial.self.values().size(); ++i)
      EXPECT_EQ(serial.self.values()[i], t.self.values()[i]) << threads;
    for (std::size_t i = 0; i < serial.series_r.values().size(); ++i)
      EXPECT_EQ(serial.series_r.values()[i], t.series_r.values()[i])
          << threads;
  }
}

TEST(ParallelAssembly, MutualMatrixBitIdenticalAcrossPools) {
  // A cross-section meshed fine enough to clear the parallel threshold.
  peec::Bar envelope;
  envelope.axis = peec::Axis::kY;
  envelope.length = um(500);
  envelope.t_width = um(8);
  envelope.z_min = um(1);
  envelope.z_thick = um(0.6);
  peec::MeshOptions mopt;
  mopt.nw = 6;
  mopt.nt = 4;
  std::vector<peec::Filament> filaments;
  for (const peec::Bar& b : peec::mesh_cross_section(envelope, mopt))
    filaments.push_back({b, 1.0, 0.0});
  ASSERT_GE(filaments.size(), 16u);

  const peec::PartialOptions popt;
  RealMatrix serial;
  {
    rt::Pool one(1);
    serial = peec::partial_inductance_matrix(filaments, popt, &one);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const int counts[] = {2, 7, hw > 0 ? static_cast<int>(hw) : 1};
  for (const int threads : counts) {
    rt::Pool pool(threads);
    const RealMatrix lp =
        peec::partial_inductance_matrix(filaments, popt, &pool);
    ASSERT_EQ(lp.rows(), serial.rows());
    for (std::size_t i = 0; i < serial.rows(); ++i)
      for (std::size_t j = 0; j < serial.cols(); ++j)
        EXPECT_EQ(serial(i, j), lp(i, j))
            << "threads=" << threads << " (" << i << "," << j << ")";
  }
}

TEST(ParallelBuild, ZeroMeansHardwareConcurrency) {
  const geom::Technology tech = geom::Technology::generic_025um();
  solver::SolveOptions opt;
  opt.frequency = 1e9;
  opt.max_filaments_per_dim = 1;
  TableGrid grid;
  grid.widths = {um(2), um(8)};
  grid.spacings = {um(1), um(4)};
  grid.lengths = {um(300), um(900)};
  const InductanceTables t =
      build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt, 0);
  EXPECT_EQ(t.self.values().size(), 4u);
  EXPECT_THROW(build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt, -2),
               std::invalid_argument);
}

}  // namespace
}  // namespace rlcx::core
