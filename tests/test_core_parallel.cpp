// Parallel table building must be bit-identical to the serial build.
#include <gtest/gtest.h>

#include "core/table_builder.h"
#include "numeric/units.h"
#include "solver/frequency.h"

namespace rlcx::core {
namespace {

using units::um;

TEST(ParallelBuild, IdenticalToSerial) {
  const geom::Technology tech = geom::Technology::generic_025um();
  solver::SolveOptions opt;
  opt.frequency = solver::significant_frequency(100e-12);
  opt.max_filaments_per_dim = 2;
  TableGrid grid;
  grid.widths = {um(2), um(5), um(12)};
  grid.spacings = {um(1), um(4)};
  grid.lengths = {um(300), um(1200)};

  const InductanceTables serial =
      build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt, 1);
  const InductanceTables parallel =
      build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt, 4);

  ASSERT_EQ(serial.mutual.values().size(), parallel.mutual.values().size());
  for (std::size_t i = 0; i < serial.mutual.values().size(); ++i)
    EXPECT_DOUBLE_EQ(serial.mutual.values()[i], parallel.mutual.values()[i]);
  for (std::size_t i = 0; i < serial.self.values().size(); ++i)
    EXPECT_DOUBLE_EQ(serial.self.values()[i], parallel.self.values()[i]);
  for (std::size_t i = 0; i < serial.series_r.values().size(); ++i)
    EXPECT_DOUBLE_EQ(serial.series_r.values()[i],
                     parallel.series_r.values()[i]);
}

TEST(ParallelBuild, ZeroMeansHardwareConcurrency) {
  const geom::Technology tech = geom::Technology::generic_025um();
  solver::SolveOptions opt;
  opt.frequency = 1e9;
  opt.max_filaments_per_dim = 1;
  TableGrid grid;
  grid.widths = {um(2), um(8)};
  grid.spacings = {um(1), um(4)};
  grid.lengths = {um(300), um(900)};
  const InductanceTables t =
      build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt, 0);
  EXPECT_EQ(t.self.values().size(), 4u);
  EXPECT_THROW(build_tables(tech, 6, geom::PlaneConfig::kNone, grid, opt, -2),
               std::invalid_argument);
}

}  // namespace
}  // namespace rlcx::core
