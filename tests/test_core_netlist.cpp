// Tests for segment RLC extraction and netlist stamping.
#include <gtest/gtest.h>

#include "cap/models.h"
#include "core/netlist_builder.h"
#include "ckt/transient.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/frequency.h"

namespace rlcx::core {
namespace {

using geom::PlaneConfig;
using geom::Technology;
using units::um;

const Technology& tech() {
  static const Technology t = Technology::generic_025um();
  return t;
}

solver::SolveOptions fast_opts() {
  solver::SolveOptions o;
  o.frequency = solver::significant_frequency(100e-12);
  o.max_filaments_per_dim = 2;
  o.plane.strips = 9;
  return o;
}

const DirectInductanceModel& cpw_model() {
  static const DirectInductanceModel m(&tech(), 6, PlaneConfig::kNone,
                                       fast_opts());
  return m;
}

TEST(SegmentRlc, PartialModeCoversAllTraces) {
  const geom::Block blk =
      geom::coplanar_waveguide(tech(), 6, um(1000), um(10), um(5), um(1));
  const SegmentRlc seg = extract_segment_rlc(blk, cpw_model());
  EXPECT_EQ(seg.kind, TableKind::kPartial);
  EXPECT_EQ(seg.l_traces.size(), 3u);
  EXPECT_EQ(seg.inductance.rows(), 3u);
  EXPECT_EQ(seg.resistance.size(), 3u);
  // Analytic R: rho l / (w t).
  EXPECT_NEAR(seg.resistance[1],
              cap::segment_resistance(um(10), um(2), um(1000), 2e-8), 1e-9);
  // Inductance symmetric, diagonally dominant.
  EXPECT_NEAR(seg.inductance(0, 1), seg.inductance(1, 0), 1e-18);
  EXPECT_GT(seg.inductance(1, 1), seg.inductance(0, 1));
  // Whole-segment capacitance values scale with length.
  const SegmentRlc seg2 =
      extract_segment_rlc(blk.with_length(um(2000)), cpw_model());
  EXPECT_NEAR(seg2.cap_ground[1], 2.0 * seg.cap_ground[1],
              1e-6 * seg2.cap_ground[1]);
}

TEST(SegmentRlc, LoopModeCoversSignalsOnly) {
  static const DirectInductanceModel loop_model(
      &tech(), 6, PlaneConfig::kBelow, fast_opts());
  const geom::Block blk =
      geom::microstrip(tech(), 6, um(1000), um(10), um(5), um(1));
  const SegmentRlc seg = extract_segment_rlc(blk, loop_model);
  EXPECT_EQ(seg.kind, TableKind::kLoop);
  ASSERT_EQ(seg.l_traces.size(), 1u);
  EXPECT_EQ(seg.l_traces[0], 1u);  // the middle (signal) trace
  EXPECT_EQ(seg.inductance.rows(), 1u);
  EXPECT_GT(seg.inductance(0, 0), 0.0);
  // Loop L below the partial self of the same trace.
  const geom::Block cpw =
      geom::coplanar_waveguide(tech(), 6, um(1000), um(10), um(5), um(1));
  const SegmentRlc pseg = extract_segment_rlc(cpw, cpw_model());
  EXPECT_LT(seg.inductance(0, 0), pseg.inductance(1, 1));
}

TEST(StampSegment, NodeBookkeeping) {
  const geom::Block blk =
      geom::coplanar_waveguide(tech(), 6, um(500), um(4), um(4), um(1));
  const SegmentRlc seg = extract_segment_rlc(blk, cpw_model());
  ckt::Netlist nl;
  const ckt::NodeId in = nl.add_node("in");
  LadderOptions lopt;
  lopt.sections = 3;
  const auto outs = stamp_segment(nl, blk, seg, {in}, lopt);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_NE(outs[0], in);
  EXPECT_FALSE(nl.inductors().empty());
  EXPECT_FALSE(nl.mutuals().empty());
  EXPECT_FALSE(nl.capacitors().empty());

  // Wrong input count throws.
  EXPECT_THROW(stamp_segment(nl, blk, seg, {in, in}, lopt),
               std::invalid_argument);
  LadderOptions bad;
  bad.sections = 0;
  EXPECT_THROW(stamp_segment(nl, blk, seg, {in}, bad),
               std::invalid_argument);
}

TEST(StampSegment, TotalsMatchExtractedValues) {
  const geom::Block blk =
      geom::coplanar_waveguide(tech(), 6, um(500), um(4), um(4), um(1));
  const SegmentRlc seg = extract_segment_rlc(blk, cpw_model());
  ckt::Netlist nl;
  const ckt::NodeId in = nl.add_node();
  LadderOptions lopt;
  lopt.sections = 5;
  stamp_segment(nl, blk, seg, {in}, lopt);

  // Sum of all inductors equals the trace self inductances.
  double l_total = 0.0;
  for (const auto& ind : nl.inductors()) l_total += ind.henries;
  const double l_expect =
      seg.inductance(0, 0) + seg.inductance(1, 1) + seg.inductance(2, 2);
  EXPECT_NEAR(l_total, l_expect, 1e-9 * l_expect);

  // Sum of all capacitors equals the signal's total C (shield-coupling
  // folded to ground, shields carry no C of their own).
  double c_total = 0.0;
  for (const auto& c : nl.capacitors()) c_total += c.farads;
  const double c_expect =
      seg.cap_ground[1] + seg.cap_coupling[0] + seg.cap_coupling[1];
  EXPECT_NEAR(c_total, c_expect, 1e-9 * c_expect);

  // Mutual-K sums match the extracted mutuals (3 trace pairs).
  double m_total = 0.0;
  for (const auto& m : nl.mutuals()) m_total += m.henries;
  const double m_expect = seg.inductance(0, 1) + seg.inductance(0, 2) +
                          seg.inductance(1, 2);
  EXPECT_NEAR(m_total, m_expect, 1e-9 * m_expect);
}

TEST(StampSegment, RcOnlyModeHasNoInductors) {
  const geom::Block blk =
      geom::coplanar_waveguide(tech(), 6, um(500), um(4), um(4), um(1));
  const SegmentRlc seg = extract_segment_rlc(blk, cpw_model());
  ckt::Netlist nl;
  const ckt::NodeId in = nl.add_node();
  LadderOptions lopt;
  lopt.sections = 1;  // stresses the shield-chain edge case
  lopt.include_inductance = false;
  stamp_segment(nl, blk, seg, {in}, lopt);
  EXPECT_TRUE(nl.inductors().empty());
  EXPECT_TRUE(nl.mutuals().empty());
  EXPECT_FALSE(nl.resistors().empty());
}

TEST(SegmentRlc, CapTablesOverrideClosedForms) {
  // With matching pre-characterised capacitance tables the segment caps
  // come from the FD tables instead of the closed forms.
  cap::CapTableGrid grid;
  grid.widths = {um(2), um(5), um(10)};
  grid.spacings = {um(1), um(2.5), um(6)};
  cap::Fd2dOptions fdo;
  fdo.cell = 0.5e-6;
  const cap::CapTables ct = cap::CapTables::build(
      tech(), 6, PlaneConfig::kNone, grid, fdo);

  const geom::Block blk =
      geom::coplanar_waveguide(tech(), 6, um(1000), um(5), um(5), um(2.5));
  ExtractOptions with;
  with.cap_tables = &ct;
  const SegmentRlc a = extract_segment_rlc(blk, cpw_model(), with);
  const SegmentRlc b = extract_segment_rlc(blk, cpw_model());
  // Different models, same ballpark.
  EXPECT_NE(a.cap_ground[1], b.cap_ground[1]);
  EXPECT_NEAR(a.cap_ground[1], b.cap_ground[1], 0.6 * b.cap_ground[1]);
  EXPECT_NEAR(a.cap_coupling[0], b.cap_coupling[0],
              0.7 * b.cap_coupling[0]);
  // Table values match the table directly (same-width uniform structure).
  EXPECT_NEAR(a.cap_coupling[0], ct.cc(um(5), um(2.5)) * um(1000), 1e-20);
  // Mismatched config falls back to closed forms.
  const geom::Block ms =
      geom::microstrip(tech(), 6, um(1000), um(5), um(5), um(2.5));
  static const DirectInductanceModel loop_model(
      &tech(), 6, PlaneConfig::kBelow, fast_opts());
  const SegmentRlc fallback = extract_segment_rlc(ms, loop_model, with);
  const SegmentRlc plain = extract_segment_rlc(ms, loop_model);
  EXPECT_DOUBLE_EQ(fallback.cap_ground[1], plain.cap_ground[1]);
}

TEST(StampSegment, SimulatedDcResistanceMatches) {
  // Drive the stamped segment with a DC source through a known resistor and
  // check the final divider ratio implies the extracted wire resistance.
  const geom::Block blk =
      geom::coplanar_waveguide(tech(), 6, um(2000), um(4), um(4), um(1));
  const SegmentRlc seg = extract_segment_rlc(blk, cpw_model());
  ckt::Netlist nl;
  const ckt::NodeId src = nl.add_node();
  const ckt::NodeId in = nl.add_node();
  nl.add_vsource(src, ckt::kGround, ckt::SourceWaveform::dc(1.0));
  nl.add_resistor(src, in, 100.0);
  LadderOptions lopt;
  lopt.sections = 4;
  const auto outs = stamp_segment(nl, blk, seg, {in}, lopt);
  const ckt::NodeId end = outs[0];
  nl.add_resistor(end, ckt::kGround, 100.0);

  ckt::TransientOptions topt;
  topt.t_stop = 20e-9;
  topt.dt = 10e-12;
  const auto res = ckt::simulate(nl, topt);
  const double v_end = res.waveform(end).final();
  // Divider: 100 / (100 + R_wire + 100).
  const double r_wire = seg.resistance[1];
  EXPECT_NEAR(v_end, 100.0 / (200.0 + r_wire), 2e-3);
}

}  // namespace
}  // namespace rlcx::core
