// Integration tests: the full pipeline — tables built by the field solver,
// looked up through splines, cascaded into an H-tree netlist, simulated —
// against the same pipeline running the field solver directly.
#include <gtest/gtest.h>

#include "clocktree/skew.h"
#include "core/cascade.h"
#include "core/table_builder.h"
#include "ckt/ac.h"
#include "ckt/spice_export.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/block_solver.h"
#include "solver/frequency.h"
#include "solver/network.h"

namespace rlcx {
namespace {

using geom::PlaneConfig;
using geom::Technology;
using units::um;

const Technology& tech() {
  static const Technology t = Technology::generic_025um();
  return t;
}

clocktree::HTreeSpec tree_spec() {
  clocktree::HTreeSpec spec = clocktree::example_cpw_tree();
  spec.levels.resize(2);
  return spec;
}

solver::SolveOptions sopts() {
  solver::SolveOptions o;
  o.frequency = solver::significant_frequency(tree_spec().driver.t_rise);
  o.max_filaments_per_dim = 2;
  return o;
}

core::InductanceLibrary table_library() {
  // Grid covering the tree's level geometries (widths 4-10 um, lengths
  // 800-3000 um, spacing 1 um).
  core::TableGrid grid;
  grid.widths = geomspace(um(3), um(12), 4);
  grid.spacings = geomspace(um(0.5), um(3), 3);
  grid.lengths = geomspace(um(500), um(4000), 4);
  core::InductanceLibrary lib;
  lib.add(6, PlaneConfig::kNone,
          std::make_shared<core::TableInductanceModel>(core::build_tables(
              tech(), 6, PlaneConfig::kNone, grid, sopts())));
  return lib;
}

core::InductanceLibrary direct_library() {
  core::InductanceLibrary lib;
  lib.add(6, PlaneConfig::kNone,
          std::make_shared<core::DirectInductanceModel>(
              &tech(), 6, PlaneConfig::kNone, sopts()));
  return lib;
}

TEST(Integration, TableTreeMatchesDirectTree) {
  const clocktree::HTreeSpec spec = tree_spec();
  clocktree::AnalysisOptions aopt;
  aopt.ladder.sections = 3;
  const clocktree::SkewResult via_tables =
      clocktree::analyze_skew(tech(), spec, table_library(), aopt);
  const clocktree::SkewResult via_solver =
      clocktree::analyze_skew(tech(), spec, direct_library(), aopt);
  ASSERT_EQ(via_tables.sink_delays.size(), via_solver.sink_delays.size());
  // Spline interpolation on the coarse test grid costs a few per cent of
  // inductance, which maps into a similar delay error.
  for (std::size_t i = 0; i < via_tables.sink_delays.size(); ++i) {
    EXPECT_NEAR(via_tables.sink_delays[i], via_solver.sink_delays[i],
                0.10 * via_solver.sink_delays[i])
        << "sink " << i;
  }
  // Skews are small differences of delays; allow a wider band.
  EXPECT_NEAR(via_tables.skew, via_solver.skew, 0.3 * via_solver.skew);
}

TEST(Integration, TreeNetlistExportsToSpice) {
  const clocktree::HTreeSpec spec = tree_spec();
  core::LadderOptions lopt;
  lopt.sections = 2;
  const clocktree::TreeNetlist tree =
      clocktree::build_tree_netlist(tech(), spec, direct_library(), lopt);
  const std::string deck = ckt::to_spice(tree.netlist);
  // Deck contains the driver source, coupling cards and terminates.
  EXPECT_NE(deck.find("V1 clk_in 0 PWL"), std::string::npos);
  EXPECT_NE(deck.find("K1 "), std::string::npos);
  EXPECT_NE(deck.find(".END"), std::string::npos);
  // Every inductor referenced by a K card exists.
  EXPECT_GE(tree.netlist.inductors().size(), 6u);
}

TEST(Integration, TreeInputImpedanceInductiveAtHighFrequency) {
  // AC analysis through the whole extracted tree: at high frequency the
  // driving-point impedance must be inductive (positive reactance), at low
  // frequency capacitive (negative reactance).
  const clocktree::HTreeSpec spec = tree_spec();
  core::LadderOptions lopt;
  lopt.sections = 3;
  clocktree::TreeNetlist tree =
      clocktree::build_tree_netlist(tech(), spec, direct_library(), lopt);
  for (const ckt::NodeId sink : tree.sinks)
    tree.netlist.add_capacitor(sink, ckt::kGround, spec.sink_cap);

  const auto z_lo =
      ckt::ac_input_impedance(tree.netlist, 50e6, tree.driver_out);
  EXPECT_LT(z_lo.imag(), 0.0);  // capacitive wall of wire + sinks
  // Somewhere in the GHz band the inductance must turn the reactance
  // positive (above the ladder's Bragg cutoff it goes capacitive again, so
  // scan rather than probe a single point).
  bool inductive_somewhere = false;
  for (double f = 0.5e9; f <= 30e9; f *= 1.3) {
    if (ckt::ac_input_impedance(tree.netlist, f, tree.driver_out).imag() >
        0.0) {
      inductive_somewhere = true;
      break;
    }
  }
  EXPECT_TRUE(inductive_somewhere);
}

TEST(Integration, CascadeEstimateTracksNetworkSolver) {
  // Per-segment loop extraction + series cascade vs the general network
  // solver for a 2-segment run — ties core::cascade to solver::Network.
  solver::SolveOptions opt = sopts();
  auto loop_of = [&](double len) {
    const geom::Block blk =
        geom::coplanar_waveguide(tech(), 6, len, um(4), um(4), um(1));
    return solver::extract_loop(blk, opt).inductance(0, 0);
  };
  const double casc =
      core::series_inductance({loop_of(um(700)), loop_of(um(300))});

  solver::Network net;
  const int a = net.add_node(), ag = net.add_node();
  const int m = net.add_node(), mg = net.add_node();
  const int far = net.add_node();
  const geom::Layer& layer = tech().layer(6);
  peec::MeshOptions mesh;
  mesh.nw = 2;
  mesh.nt = 2;
  auto add_gsg = [&](int ns1, int ng1, int ns2, int ng2, double y0,
                     double len) {
    auto bar = [&](double xc, double w) {
      peec::Bar b;
      b.a_min = y0;
      b.length = len;
      b.t_min = xc - 0.5 * w;
      b.t_width = w;
      b.z_min = layer.z_bottom;
      b.z_thick = layer.thickness;
      return b;
    };
    net.add_segment(ns1, ns2, bar(0.0, um(4)), layer.rho, mesh);
    net.add_segment(ng1, ng2, bar(-um(5), um(4)), layer.rho, mesh);
    net.add_segment(ng1, ng2, bar(um(5), um(4)), layer.rho, mesh);
  };
  add_gsg(a, ag, m, mg, 0.0, um(700));
  add_gsg(m, mg, far, far, um(700), um(300));
  const double full = net.loop_impedance(a, ag, opt.frequency).inductance;
  EXPECT_NEAR(casc, full, 0.03 * full);
}

}  // namespace
}  // namespace rlcx
