// Tests for the geometry layer: technology stack, traces, blocks, builders.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "diag/error.h"
#include "geom/builders.h"
#include "numeric/units.h"

namespace rlcx::geom {
namespace {

using units::um;

TEST(Technology, GenericStackIsSane) {
  const Technology tech = Technology::generic_025um();
  EXPECT_GE(tech.layer_count(), 6u);
  EXPECT_TRUE(tech.has_layer(6));
  EXPECT_FALSE(tech.has_layer(99));
  // Clock layer of Figure 1 is 2 um thick.
  EXPECT_NEAR(tech.layer(6).thickness, um(2.0), 1e-12);
  // Layers stack upward without overlap.
  for (int i = 1; i < tech.top_layer(); ++i)
    EXPECT_LE(tech.layer(i).z_top(), tech.layer(i + 1).z_bottom + 1e-15);
}

TEST(Technology, DielectricGapPositive) {
  const Technology tech = Technology::generic_025um();
  EXPECT_GT(tech.dielectric_gap(4, 6), 0.0);
  EXPECT_GT(tech.center_separation(4, 6), tech.dielectric_gap(4, 6));
}

TEST(Technology, RejectsBadStacks) {
  EXPECT_THROW(Technology({}, 3.9), std::invalid_argument);
  std::vector<Layer> dup{{1, um(1), 0.0, 2e-8}, {1, um(1), um(2), 2e-8}};
  EXPECT_THROW(Technology(dup, 3.9), std::invalid_argument);
  std::vector<Layer> overlap{{1, um(2), 0.0, 2e-8}, {2, um(1), um(1), 2e-8}};
  EXPECT_THROW(Technology(overlap, 3.9), std::invalid_argument);
}

TEST(Technology, TemperatureScalesResistivityOnly) {
  const Technology t25 = Technology::generic_025um();
  const Technology t105 = t25.at_temperature(105.0);
  // 80 K above reference with alpha = 0.39%/K: +31.2%.
  EXPECT_NEAR(t105.layer(6).rho, t25.layer(6).rho * 1.312, 1e-12);
  // Geometry untouched.
  EXPECT_DOUBLE_EQ(t105.layer(6).thickness, t25.layer(6).thickness);
  EXPECT_DOUBLE_EQ(t105.eps_r(), t25.eps_r());
  // Cold corner lowers rho.
  EXPECT_LT(t25.at_temperature(-40.0).layer(6).rho, t25.layer(6).rho);
  EXPECT_THROW(t25.at_temperature(-1e4), std::invalid_argument);
}

TEST(Block, SortsTracesAndComputesSpacing) {
  const Technology tech = Technology::generic_025um();
  std::vector<Trace> traces{
      {TraceRole::kSignal, um(2), um(10), "b"},
      {TraceRole::kGround, um(2), 0.0, "a"},
  };
  Block blk(&tech, 6, um(100), traces);
  EXPECT_EQ(blk.trace(0).name, "a");
  EXPECT_EQ(blk.trace(1).name, "b");
  EXPECT_NEAR(blk.spacing(0, 1), um(8), 1e-15);
  EXPECT_NEAR(blk.pitch(0, 1), um(10), 1e-15);
  EXPECT_NEAR(blk.spacing(1, 0), um(8), 1e-15);  // order-independent
}

TEST(Block, RejectsOverlap) {
  const Technology tech = Technology::generic_025um();
  std::vector<Trace> traces{
      {TraceRole::kSignal, um(4), 0.0, "a"},
      {TraceRole::kSignal, um(4), um(3), "b"},
  };
  EXPECT_THROW(Block(&tech, 6, um(100), traces), std::invalid_argument);
}

TEST(Block, PlaneValidation) {
  const Technology tech = Technology::generic_025um();
  std::vector<Trace> traces{{TraceRole::kSignal, um(2), 0.0, "a"}};
  // Layer 1 has no layer -1 below.
  EXPECT_THROW(Block(&tech, 1, um(100), traces, PlaneConfig::kBelow),
               std::invalid_argument);
  Block ok(&tech, 6, um(100), traces, PlaneConfig::kBelow);
  EXPECT_EQ(ok.plane_layer_below(), 4);
  EXPECT_THROW(ok.plane_layer_above(), std::logic_error);
  EXPECT_GT(ok.height_above_plane(), 0.0);
}

TEST(Block, SubproblemExtractsTraces) {
  const Technology tech = Technology::generic_025um();
  Block blk = uniform_array(tech, 6, um(500), 5, um(2), um(2));
  Block sub = blk.subproblem({0, 4});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_NEAR(sub.pitch(0, 1), blk.pitch(0, 4), 1e-15);
  EXPECT_EQ(sub.length(), blk.length());
}

TEST(Block, WithLengthKeepsGeometry) {
  const Technology tech = Technology::generic_025um();
  Block blk = coplanar_waveguide(tech, 6, um(1000), um(10), um(5), um(1));
  Block longer = blk.with_length(um(2000));
  EXPECT_NEAR(longer.length(), um(2000), 1e-15);
  EXPECT_EQ(longer.size(), 3u);
  EXPECT_NEAR(longer.spacing(0, 1), um(1), 1e-15);
}

TEST(Builders, CoplanarWaveguideLayout) {
  const Technology tech = Technology::generic_025um();
  Block blk = coplanar_waveguide(tech, 6, um(6000), um(10), um(5), um(1));
  ASSERT_EQ(blk.size(), 3u);
  EXPECT_EQ(blk.trace(0).role, TraceRole::kGround);
  EXPECT_EQ(blk.trace(1).role, TraceRole::kSignal);
  EXPECT_EQ(blk.trace(2).role, TraceRole::kGround);
  EXPECT_NEAR(blk.spacing(0, 1), um(1), 1e-12);
  EXPECT_NEAR(blk.spacing(1, 2), um(1), 1e-12);
  EXPECT_EQ(blk.planes(), PlaneConfig::kNone);
  EXPECT_EQ(blk.signal_indices().size(), 1u);
  EXPECT_EQ(blk.ground_indices().size(), 2u);
}

TEST(Builders, MicrostripAndStripline) {
  const Technology tech = Technology::generic_025um();
  EXPECT_EQ(microstrip(tech, 6, um(100), um(4), um(4), um(1)).planes(),
            PlaneConfig::kBelow);
  EXPECT_EQ(stripline(tech, 6, um(100), um(4), um(4), um(1)).planes(),
            PlaneConfig::kBothSides);
}

TEST(Builders, BusBlockRolesAndCentering) {
  const Technology tech = Technology::generic_025um();
  Block blk = bus_block(tech, 6, um(100), {um(5), um(2), um(2), um(5)},
                        {um(1), um(1), um(1)});
  ASSERT_EQ(blk.size(), 4u);
  EXPECT_EQ(blk.trace(0).role, TraceRole::kGround);
  EXPECT_EQ(blk.trace(1).role, TraceRole::kSignal);
  EXPECT_EQ(blk.trace(2).role, TraceRole::kSignal);
  EXPECT_EQ(blk.trace(3).role, TraceRole::kGround);
  // Centered: symmetric extents.
  EXPECT_NEAR(blk.trace(0).x_left(), -blk.trace(3).x_right(), 1e-12);
}

TEST(Builders, UniformArraySpacingUniform) {
  const Technology tech = Technology::generic_025um();
  Block blk = uniform_array(tech, 6, um(2000), 5, um(2), um(2),
                            PlaneConfig::kBelow);
  ASSERT_EQ(blk.size(), 5u);
  for (std::size_t i = 0; i + 1 < 5; ++i)
    EXPECT_NEAR(blk.spacing(i, i + 1), um(2), 1e-12);
  EXPECT_EQ(blk.signal_indices().size(), 5u);
}

TEST(Builders, BusBlockArgumentValidation) {
  const Technology tech = Technology::generic_025um();
  EXPECT_THROW(bus_block(tech, 6, um(100), {um(5)}, {}),
               std::invalid_argument);
  EXPECT_THROW(bus_block(tech, 6, um(100), {um(5), um(5)}, {um(1), um(1)}),
               std::invalid_argument);
}

TEST(PlaneConfigNames, ToString) {
  EXPECT_STREQ(to_string(PlaneConfig::kNone), "none");
  EXPECT_STREQ(to_string(PlaneConfig::kBelow), "below");
  EXPECT_STREQ(to_string(PlaneConfig::kAbove), "above");
  EXPECT_STREQ(to_string(PlaneConfig::kBothSides), "both");
}

// Degenerate geometry must die as a categorized `geometry` error at
// construction — never reach the solvers and come back as NaN.
TEST(DegenerateGeometry, ZeroWidthTraceIsAGeometryError) {
  const Technology tech = Technology::generic_025um();
  const std::vector<Trace> traces{{TraceRole::kSignal, 0.0, 0.0, "sig"}};
  try {
    Block blk(&tech, 6, um(100), traces);
    FAIL() << "zero-width trace must be rejected";
  } catch (const diag::GeometryError& e) {
    EXPECT_EQ(e.category(), diag::Category::kGeometry);
    EXPECT_NE(std::string(e.what()).find("width"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'sig'"), std::string::npos);
  }
}

TEST(DegenerateGeometry, ZeroLengthBlockIsAGeometryError) {
  const Technology tech = Technology::generic_025um();
  const std::vector<Trace> traces{{TraceRole::kSignal, um(2), 0.0, "s"}};
  EXPECT_THROW(Block(&tech, 6, 0.0, traces), diag::GeometryError);
  EXPECT_THROW(Block(&tech, 6, -um(5), traces), diag::GeometryError);
  const double nan = std::nan("");
  EXPECT_THROW(Block(&tech, 6, nan, traces), diag::GeometryError);
}

TEST(DegenerateGeometry, NonFiniteTraceFieldsAreGeometryErrors) {
  const Technology tech = Technology::generic_025um();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Block(&tech, 6, um(100),
                     {{TraceRole::kSignal, inf, 0.0, "w"}}),
               diag::GeometryError);
  EXPECT_THROW(Block(&tech, 6, um(100),
                     {{TraceRole::kSignal, um(2), std::nan(""), "x"}}),
               diag::GeometryError);
}

TEST(DegenerateGeometry, TechnologyRejectionsAreCategorized) {
  EXPECT_THROW(Technology({}, 3.9), diag::GeometryError);
  EXPECT_THROW(Technology({{1, 0.0, 0.0, 2e-8}}, 3.9), diag::GeometryError);
  EXPECT_THROW(Technology({{1, um(1), 0.0, -2e-8}}, 3.9),
               diag::GeometryError);
  EXPECT_THROW(Technology({{1, um(1), 0.0, 2e-8}}, 0.0),
               diag::GeometryError);
}

}  // namespace
}  // namespace rlcx::geom
