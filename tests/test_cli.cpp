// Tests for the command-line front end (driven through run()).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/cli.h"
#include "run/fault_injection.h"

namespace rlcx::cli {
namespace {

struct Result {
  int code;
  std::string out;
  std::string err;
};

Result drive(const std::vector<std::string>& argv) {
  std::ostringstream out, err;
  const int code = run(argv, out, err);
  return {code, out.str(), err.str()};
}

TEST(CliParse, CommandAndFlags) {
  const Args a = parse_args({"extract", "--length-um", "6000",
                             "--ac-resistance", "--structure", "cpw"});
  EXPECT_EQ(a.command, "extract");
  EXPECT_EQ(a.get("length-um", ""), "6000");
  EXPECT_TRUE(a.has("ac-resistance"));
  EXPECT_EQ(a.get("structure", ""), "cpw");
  EXPECT_DOUBLE_EQ(a.get_num("length-um", 0.0), 6000.0);
  EXPECT_DOUBLE_EQ(a.get_num("missing", 42.0), 42.0);
}

TEST(CliParse, Malformed) {
  EXPECT_THROW(parse_args({"extract", "oops"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"extract", "--"}), std::invalid_argument);
  const Args bad = parse_args({"delay", "--rs", "abc"});
  EXPECT_THROW(bad.get_num("rs", 0.0), std::invalid_argument);
}

TEST(Cli, HelpAndUnknownCommand) {
  const Result h = drive({"help"});
  EXPECT_EQ(h.code, 0);
  EXPECT_NE(h.out.find("extract"), std::string::npos);
  const Result empty = drive({});
  EXPECT_EQ(empty.code, 0);
  const Result bad = drive({"frobnicate"});
  EXPECT_EQ(bad.code, 2);
  EXPECT_NE(bad.err.find("unknown command"), std::string::npos);
}

TEST(Cli, ExtractCpwReportsRlc) {
  const Result r = drive({"extract", "--structure", "cpw", "--length-um",
                          "1000", "--signal-um", "10", "--ground-um", "5",
                          "--spacing-um", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("trace sig"), std::string::npos);
  EXPECT_NE(r.out.find("mutual L"), std::string::npos);
  EXPECT_NE(r.out.find("coupling C"), std::string::npos);
  // R of 10 um x 2 um x 1000 um copper: 1 ohm.
  EXPECT_NE(r.out.find("R = 1 ohm"), std::string::npos);
}

TEST(Cli, ExtractMicrostripUsesLoopTables) {
  const Result r = drive({"extract", "--structure", "microstrip",
                          "--length-um", "500"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("planes below"), std::string::npos);
}

TEST(Cli, ExtractRejectsBadStructure) {
  const Result r = drive({"extract", "--structure", "coax"});
  EXPECT_EQ(r.code, 2);  // usage error per the exit-code contract
  EXPECT_NE(r.err.find("unknown structure"), std::string::npos);
}

TEST(Cli, ExtractWritesSpiceDeck) {
  const std::string path = "/tmp/rlcx_cli_test.sp";
  const Result r = drive({"extract", "--length-um", "500", "--spice", path});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream deck;
  deck << f.rdbuf();
  EXPECT_NE(deck.str().find(".END"), std::string::npos);
  EXPECT_NE(deck.str().find("K1 "), std::string::npos);
}

TEST(Cli, DelayRcVsRlcOrdering) {
  const std::vector<std::string> base{
      "delay", "--structure", "cpw", "--length-um", "4000", "--trise-ps",
      "200", "--rs", "25", "--sections", "6"};
  const Result rlc = drive(base);
  ASSERT_EQ(rlc.code, 0) << rlc.err;
  std::vector<std::string> rc_args = base;
  rc_args.push_back("--no-inductance");
  const Result rc = drive(rc_args);
  ASSERT_EQ(rc.code, 0) << rc.err;
  EXPECT_NE(rlc.out.find("RLC"), std::string::npos);
  EXPECT_NE(rc.out.find("RC-only"), std::string::npos);

  auto delay_of = [](const std::string& s) {
    const auto pos = s.find("delay: ");
    return std::stod(s.substr(pos + 7));
  };
  EXPECT_GT(delay_of(rlc.out), delay_of(rc.out));
}

TEST(Cli, DelayWritesCsv) {
  const std::string path = "/tmp/rlcx_cli_wave.csv";
  const Result r = drive({"delay", "--length-um", "500", "--csv", path});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream f(path);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "time,buf,sink");
}

TEST(Cli, ExtractCustomTraces) {
  const Result r = drive({"extract", "--traces", "g:6,s:3,s:3,g:6",
                          "--spacings", "1,1.5,1", "--length-um", "800"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("trace s1"), std::string::npos);
  EXPECT_NE(r.out.find("trace s2"), std::string::npos);
  EXPECT_NE(r.out.find("mutual L(s1,s2)"), std::string::npos);
}

TEST(Cli, ExtractCustomTracesValidation) {
  const Result bad = drive({"extract", "--traces", "x:6,s:3"});
  EXPECT_EQ(bad.code, 2);
  EXPECT_NE(bad.err.find("bad --traces token"), std::string::npos);
  const Result bad2 = drive({"extract", "--traces", "g:6,s:3,g:6",
                             "--spacings", "1"});
  EXPECT_EQ(bad2.code, 2);
}

TEST(Cli, ExtractPrintsScreeningVerdict) {
  const Result r = drive({"extract", "--structure", "cpw", "--length-um",
                          "6000", "--signal-um", "10", "--ground-um", "5",
                          "--spacing-um", "1", "--trise-ps", "100"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("SIGNIFICANT"), std::string::npos);
  // A short resistive net screens as negligible.
  const Result r2 = drive({"extract", "--structure", "cpw", "--length-um",
                           "200", "--signal-um", "0.5", "--ground-um",
                           "0.5", "--spacing-um", "0.5", "--trise-ps",
                           "500"});
  EXPECT_EQ(r2.code, 0) << r2.err;
  EXPECT_NE(r2.out.find("negligible"), std::string::npos);
}

TEST(Cli, ExtractTracesTolerateWhitespace) {
  // Regression: split_commas() used to keep surrounding whitespace, so
  // quoted lists like "g:5, s:10" threw on the spaced token.
  const Result r = drive({"extract", "--traces", "g:5, s:10", "--spacings",
                          " 1 ", "--length-um", "500"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("trace s1"), std::string::npos);
}

TEST(Cli, ExtractTracesRejectEmptyItems) {
  const Result r = drive({"extract", "--traces", "g:5,,s:10"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("empty item"), std::string::npos);
  const Result r2 = drive({"extract", "--traces", "g:5,s:10,"});
  EXPECT_EQ(r2.code, 2);
  EXPECT_NE(r2.err.find("empty item"), std::string::npos);
}

TEST(Cli, TableCacheColdWarmAndMaintenance) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "rlcx_cli_cache")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  const std::string out_path = "/tmp/rlcx_cli_cached_tables.tbl";

  const std::vector<std::string> build{"tables", "--out", out_path,
                                       "--points", "2", "--table-cache",
                                       dir, "--binary"};
  const Result cold = drive(build);
  ASSERT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.out.find("cache miss"), std::string::npos);

  const Result warm = drive(build);
  ASSERT_EQ(warm.code, 0) << warm.err;
  EXPECT_NE(warm.out.find("cache hit, 0 field solves"), std::string::npos);

  // The binary bundle written via --binary starts with the RLXB magic.
  std::ifstream f(out_path, std::ios::binary);
  char magic[4] = {};
  f.read(magic, 4);
  EXPECT_EQ(std::string(magic, 4), "RLXB");

  // extract answers from the same cache entry (same tech/grid/frequency).
  const Result ext = drive({"extract", "--structure", "cpw", "--length-um",
                            "1000", "--points", "2", "--table-cache", dir});
  ASSERT_EQ(ext.code, 0) << ext.err;
  EXPECT_NE(ext.out.find("cache hit, 0 field solves"), std::string::npos);

  const Result stat = drive({"cache", "--dir", dir});
  ASSERT_EQ(stat.code, 0) << stat.err;
  EXPECT_NE(stat.out.find("1 entries"), std::string::npos);
  const Result list = drive({"cache", "--dir", dir, "--list"});
  ASSERT_EQ(list.code, 0) << list.err;
  EXPECT_NE(list.out.find("layer 6"), std::string::npos);
  const Result purge = drive({"cache", "--dir", dir, "--purge"});
  ASSERT_EQ(purge.code, 0) << purge.err;
  EXPECT_NE(purge.out.find("purged 1"), std::string::npos);
  const Result stat2 = drive({"cache", "--dir", dir});
  EXPECT_NE(stat2.out.find("0 entries"), std::string::npos);
  std::filesystem::remove_all(dir, ec);
}

TEST(Cli, CacheCommandRequiresDir) {
  const Result r = drive({"cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--dir"), std::string::npos);
}

TEST(Cli, TablesRequireOutAndBuild) {
  const Result missing = drive({"tables"});
  EXPECT_EQ(missing.code, 2);
  const std::string path = "/tmp/rlcx_cli_tables.txt";
  const Result r = drive({"tables", "--out", path, "--points", "2",
                          "--planes", "none"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("saved to"), std::string::npos);
  std::ifstream f(path);
  std::string magic;
  f >> magic;
  EXPECT_EQ(magic, "rlcx-tables");
}

// ---- Exit-code contract (see cli.h): 2 usage, 3 invalid input, 4 numeric.

TEST(CliExitCodes, ValidationFailureExitsThree) {
  // A zero-width trace is structurally invalid geometry, not a usage error:
  // the flags parse fine, the input they describe does not.
  const Result r = drive({"extract", "--traces", "s:0", "--length-um", "500"});
  EXPECT_EQ(r.code, 3);
  EXPECT_NE(r.err.find("[geometry]"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("width"), std::string::npos) << r.err;
}

TEST(CliExitCodes, MutuallyExclusiveStrictLenient) {
  const Result r = drive({"extract", "--strict", "--lenient"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("mutually exclusive"), std::string::npos);
}

TEST(CliExitCodes, UnknownExtrapolationPolicyIsUsage) {
  const Result r = drive({"extract", "--extrapolation", "maybe"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--extrapolation"), std::string::npos);
}

TEST(CliExitCodes, ExtrapolationPolicyGovernsOutOfGridQueries) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "rlcx_cli_extrap")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  // Characterise a tiny grid (widths 1..20 um), then ask for a 50 um trace.
  const std::vector<std::string> base{
      "extract", "--structure", "cpw",   "--length-um",   "1000",
      "--signal-um", "50",      "--points", "2", "--table-cache", dir};

  // Default (warn): succeeds, with a numeric warning on stderr.
  const Result warn = drive(base);
  EXPECT_EQ(warn.code, 0) << warn.err;
  EXPECT_NE(warn.err.find("warning: [numeric]"), std::string::npos)
      << warn.err;
  EXPECT_NE(warn.err.find("outside table"), std::string::npos) << warn.err;

  // --strict escalates that warning to the numeric exit code.
  std::vector<std::string> strict = base;
  strict.push_back("--strict");
  const Result esc = drive(strict);
  EXPECT_EQ(esc.code, 4) << esc.err;
  EXPECT_NE(esc.err.find("strict mode"), std::string::npos) << esc.err;

  // --extrapolation throw refuses outright with a numeric error naming the
  // table, even in the default lenient mode.
  std::vector<std::string> hard = base;
  hard.push_back("--extrapolation");
  hard.push_back("throw");
  const Result thrown = drive(hard);
  EXPECT_EQ(thrown.code, 4) << thrown.err;
  EXPECT_NE(thrown.err.find("[numeric]"), std::string::npos) << thrown.err;
  EXPECT_NE(thrown.err.find("mutual-L"), std::string::npos) << thrown.err;

  // --extrapolation clamp answers from the grid edge, silently.
  std::vector<std::string> clamp = base;
  clamp.push_back("--extrapolation");
  clamp.push_back("clamp");
  const Result clamped = drive(clamp);
  EXPECT_EQ(clamped.code, 0) << clamped.err;
  EXPECT_EQ(clamped.err.find("warning:"), std::string::npos) << clamped.err;
  std::filesystem::remove_all(dir, ec);
}

TEST(CliExitCodes, CorruptCacheRecoversByDefaultAndFailsUnderStrict) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "rlcx_cli_corrupt")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  const std::vector<std::string> base{"extract",    "--structure", "cpw",
                                      "--length-um", "1000",       "--points",
                                      "2",          "--table-cache", dir};
  ASSERT_EQ(drive(base).code, 0);

  auto corrupt_entry = [&] {
    for (const auto& de : std::filesystem::directory_iterator(dir))
      if (de.path().extension() == ".tbl") {
        std::ofstream os(de.path(), std::ios::binary | std::ios::trunc);
        os << "RLXBgarbage";
      }
  };

  // Default policy: quarantined, warned, transparently re-characterised.
  corrupt_entry();
  const Result rec = drive(base);
  EXPECT_EQ(rec.code, 0) << rec.err;
  EXPECT_NE(rec.err.find("warning: [cache]"), std::string::npos) << rec.err;
  EXPECT_NE(rec.err.find("quarantined"), std::string::npos) << rec.err;
  EXPECT_NE(rec.out.find("quarantined and re-characterised"),
            std::string::npos)
      << rec.out;
  const Result stat = drive({"cache", "--dir", dir});
  EXPECT_NE(stat.out.find("1 quarantined"), std::string::npos) << stat.out;

  // Strict policy: the corrupt entry is a hard cache error (exit 3).
  corrupt_entry();
  std::vector<std::string> strict = base;
  strict.push_back("--strict");
  const Result hard = drive(strict);
  EXPECT_EQ(hard.code, 3) << hard.err;
  EXPECT_NE(hard.err.find("[cache]"), std::string::npos) << hard.err;
  std::filesystem::remove_all(dir, ec);
}

TEST(CliBatch, RequiresTableCache) {
  const Result r = drive({"batch"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--table-cache"), std::string::npos);
}

TEST(CliBatch, CampaignJournalGuardAndResume) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "rlcx_cli_batch")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  const std::vector<std::string> base{"batch",     "--table-cache", dir,
                                      "--layers",  "6",             "--points",
                                      "2",         "--planes-list", "none"};

  const Result first = drive(base);
  ASSERT_EQ(first.code, 0) << first.err;
  EXPECT_NE(first.out.find("1 jobs"), std::string::npos) << first.out;
  EXPECT_NE(first.out.find("0 resumed from journal"), std::string::npos);
  EXPECT_NE(first.out.find("16 field solves"), std::string::npos);
  EXPECT_NE(first.out.find("1 completed ids"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(dir + "/batch.journal"));

  // Re-running without --resume must not silently reuse the journal.
  const Result guarded = drive(base);
  EXPECT_EQ(guarded.code, 2) << guarded.err;
  EXPECT_NE(guarded.err.find("--resume"), std::string::npos) << guarded.err;

  // --resume: journaled job served from the cache, zero re-solves.
  std::vector<std::string> resume = base;
  resume.push_back("--resume");
  const Result resumed = drive(resume);
  ASSERT_EQ(resumed.code, 0) << resumed.err;
  EXPECT_NE(resumed.out.find("1 resumed from journal, 0 field solves"),
            std::string::npos)
      << resumed.out;
  std::filesystem::remove_all(dir, ec);
}

TEST(CliBatch, CancelledCampaignExitsFiveAndResumes) {
  struct InjectorReset {
    ~InjectorReset() { run::FaultInjector::global().clear(); }
  } injector_reset;
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "rlcx_cli_batch_cancel")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  const std::vector<std::string> base{"batch",     "--table-cache", dir,
                                      "--layers",  "6,4",           "--points",
                                      "2",         "--planes-list", "none"};

  // A reproducible SIGINT: cancellation at a mid-campaign checkpoint.
  run::FaultInjector::global().set_schedule("cancel:40");
  const Result killed = drive(base);
  EXPECT_EQ(killed.code, 5) << killed.err;
  EXPECT_NE(killed.err.find("[cancelled]"), std::string::npos) << killed.err;
  run::FaultInjector::global().clear();

  // The relaunch completes the campaign; journaled work is not re-done.
  std::vector<std::string> resume = base;
  resume.push_back("--resume");
  const Result resumed = drive(resume);
  ASSERT_EQ(resumed.code, 0) << resumed.err;
  EXPECT_NE(resumed.out.find("2 completed ids"), std::string::npos)
      << resumed.out;
  std::filesystem::remove_all(dir, ec);
}

TEST(CliBatch, ExpiredDeadlineExitsFive) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "rlcx_cli_batch_dl")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  const Result r = drive({"batch", "--table-cache", dir, "--layers", "6",
                          "--points", "2", "--planes-list", "none",
                          "--deadline-s", "0"});
  EXPECT_EQ(r.code, 5) << r.err;
  EXPECT_NE(r.err.find("[deadline]"), std::string::npos) << r.err;
  std::filesystem::remove_all(dir, ec);
}

TEST(CliBatch, DeadlineAppliesToEveryCommand) {
  const Result r = drive({"extract", "--structure", "cpw", "--length-um",
                          "1000", "--deadline-s", "0"});
  EXPECT_EQ(r.code, 5) << r.err;
  EXPECT_NE(r.err.find("[deadline]"), std::string::npos) << r.err;
}

TEST(CliBatch, HelpDocumentsRunControl) {
  const Result h = drive({"help"});
  EXPECT_NE(h.out.find("batch"), std::string::npos);
  EXPECT_NE(h.out.find("--deadline-s"), std::string::npos);
  EXPECT_NE(h.out.find("5 cancelled"), std::string::npos);
}

}  // namespace
}  // namespace rlcx::cli
