// Loop-mode netlist formulation (microstrip/stripline segments) end-to-end:
// the precomputed loop inductance sits in the signal branch, shields carry
// no explicit branches, and the simulated behaviour is physical.
#include <gtest/gtest.h>

#include "core/netlist_builder.h"
#include "ckt/transient.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/frequency.h"

namespace rlcx::core {
namespace {

using geom::PlaneConfig;
using geom::Technology;
using units::um;

const Technology& tech() {
  static const Technology t = Technology::generic_025um();
  return t;
}

solver::SolveOptions opts() {
  solver::SolveOptions o;
  o.frequency = solver::significant_frequency(100e-12);
  o.max_filaments_per_dim = 2;
  o.plane.strips = 9;
  return o;
}

const DirectInductanceModel& loop_model() {
  static const DirectInductanceModel m(&tech(), 6, PlaneConfig::kBelow,
                                       opts());
  return m;
}

TEST(LoopMode, StampedNetlistShapeMatchesLoopSemantics) {
  const geom::Block blk =
      geom::microstrip(tech(), 6, um(2000), um(6), um(6), um(1));
  const SegmentRlc seg = extract_segment_rlc(blk, loop_model());
  ASSERT_EQ(seg.kind, TableKind::kLoop);

  ckt::Netlist nl;
  const ckt::NodeId in = nl.add_node();
  LadderOptions lopt;
  lopt.sections = 5;
  stamp_segment(nl, blk, seg, {in}, lopt);
  // Only the signal chain carries inductors: one per section, no mutuals
  // (a single L row), shields contribute nothing.
  EXPECT_EQ(nl.inductors().size(), 5u);
  EXPECT_TRUE(nl.mutuals().empty());
  double l_total = 0.0;
  for (const auto& l : nl.inductors()) l_total += l.henries;
  EXPECT_NEAR(l_total, seg.inductance(0, 0), 1e-9 * seg.inductance(0, 0));
}

TEST(LoopMode, SimulatedDelayPhysicalAndBelowCpw) {
  // The plane return cuts the loop inductance, so the microstrip segment
  // must fly faster than the same wire as a bare coplanar structure.
  auto delay_for = [&](const geom::Block& blk,
                       const InductanceProvider& model) {
    const SegmentRlc seg = extract_segment_rlc(blk, model);
    ckt::Netlist nl;
    const ckt::NodeId vin = nl.add_node();
    const ckt::NodeId buf = nl.add_node();
    nl.add_vsource(vin, ckt::kGround,
                   ckt::SourceWaveform::ramp(1.8, 100e-12));
    nl.add_resistor(vin, buf, 25.0);
    LadderOptions lopt;
    lopt.sections = 6;
    const auto outs = stamp_segment(nl, blk, seg, {buf}, lopt);
    nl.add_capacitor(outs[0], ckt::kGround, 100e-15);
    ckt::TransientOptions topt;
    topt.t_stop = 2e-9;
    topt.dt = 0.5e-12;
    const auto res = ckt::simulate(nl, topt);
    return res.waveform(outs[0]).first_rise_through(0.9).value();
  };

  const geom::Block ms =
      geom::microstrip(tech(), 6, um(3000), um(6), um(6), um(1));
  const geom::Block cpw =
      geom::coplanar_waveguide(tech(), 6, um(3000), um(6), um(6), um(1));
  static const DirectInductanceModel cpw_model(&tech(), 6,
                                               PlaneConfig::kNone, opts());
  const double d_ms = delay_for(ms, loop_model());
  const double d_cpw = delay_for(cpw, cpw_model);
  EXPECT_GT(d_ms, 0.0);
  EXPECT_LT(d_ms, d_cpw);
}

TEST(LoopMode, MultiSignalLoopSegmentCouplesThroughK) {
  // Two signals over a plane: loop mutual becomes a K element per section.
  std::vector<geom::Trace> traces{
      {geom::TraceRole::kSignal, um(4), -um(4), "s1"},
      {geom::TraceRole::kSignal, um(4), um(4), "s2"},
  };
  const geom::Block blk(&tech(), 6, um(1500), std::move(traces),
                        PlaneConfig::kBelow);
  const SegmentRlc seg = extract_segment_rlc(blk, loop_model());
  ASSERT_EQ(seg.l_traces.size(), 2u);

  ckt::Netlist nl;
  const ckt::NodeId a = nl.add_node();
  const ckt::NodeId b = nl.add_node();
  LadderOptions lopt;
  lopt.sections = 3;
  const auto outs = stamp_segment(nl, blk, seg, {a, b}, lopt);
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(nl.inductors().size(), 6u);  // 2 signals x 3 sections
  EXPECT_EQ(nl.mutuals().size(), 3u);    // one K per section
  double m_total = 0.0;
  for (const auto& m : nl.mutuals()) m_total += m.henries;
  EXPECT_NEAR(m_total, seg.inductance(0, 1), 1e-9 * seg.inductance(0, 0));
}

TEST(LoopMode, PeriodicClockPropagatesBothEdges) {
  // Drive a loop-mode segment with a periodic clock and check the sink
  // tracks both the rising and falling edges over two cycles.
  const geom::Block blk =
      geom::microstrip(tech(), 6, um(2000), um(6), um(6), um(1));
  const SegmentRlc seg = extract_segment_rlc(blk, loop_model());
  ckt::Netlist nl;
  const ckt::NodeId vin = nl.add_node();
  const ckt::NodeId buf = nl.add_node();
  nl.add_vsource(vin, ckt::kGround,
                 ckt::SourceWaveform::clock(1.8, 2e-9, 100e-12));
  nl.add_resistor(vin, buf, 25.0);
  LadderOptions lopt;
  lopt.sections = 4;
  const auto outs = stamp_segment(nl, blk, seg, {buf}, lopt);
  nl.add_capacitor(outs[0], ckt::kGround, 100e-15);
  ckt::TransientOptions topt;
  topt.t_stop = 4e-9;
  topt.dt = 1e-12;
  const ckt::Waveform w = ckt::simulate(nl, topt).waveform(outs[0]);
  // High during the first half-cycle, low again after the fall, high again
  // in the second cycle.
  EXPECT_GT(w.value_at(0.9e-9), 1.5);
  EXPECT_LT(w.value_at(1.9e-9), 0.3);
  EXPECT_GT(w.value_at(2.9e-9), 1.5);
}

}  // namespace
}  // namespace rlcx::core
