// Randomised robustness sweep: arbitrary (deterministic-seeded) shielded
// structures through the whole pipeline — extraction, netlist stamping,
// a short transient — asserting the physical invariants that must hold for
// *every* valid input, not just the curated geometries.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/netlist_builder.h"
#include "ckt/transient.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/block_solver.h"

namespace rlcx {
namespace {

using units::um;

const geom::Technology& tech() {
  static const geom::Technology t = geom::Technology::generic_025um();
  return t;
}

struct FuzzCase {
  std::uint64_t seed;
};

class PipelineFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(PipelineFuzz, InvariantsHoldOnRandomStructures) {
  std::mt19937_64 rng(GetParam().seed);
  auto uni = [&](double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(rng);
  };
  auto pick_uint = [&](std::uint64_t lo, std::uint64_t hi) {
    std::uniform_int_distribution<std::uint64_t> d(lo, hi);
    return d(rng);
  };

  // Random shielded bus: 1-3 signals between shields, random widths,
  // spacings, length and plane configuration.
  const std::size_t nsig = pick_uint(1, 3);
  std::vector<double> widths;
  std::vector<double> spacings;
  widths.push_back(um(uni(1.0, 12.0)));  // left shield
  for (std::size_t s = 0; s < nsig; ++s) {
    spacings.push_back(um(uni(0.5, 6.0)));
    widths.push_back(um(uni(1.0, 12.0)));
  }
  spacings.push_back(um(uni(0.5, 6.0)));
  widths.push_back(um(uni(1.0, 12.0)));  // right shield
  const double length = um(uni(150.0, 3000.0));
  const geom::PlaneConfig planes = pick_uint(0, 1) == 0
                                       ? geom::PlaneConfig::kNone
                                       : geom::PlaneConfig::kBelow;
  const geom::Block blk =
      geom::bus_block(tech(), 6, length, widths, spacings, planes);

  solver::SolveOptions sopt;
  sopt.frequency = uni(0.5e9, 8e9);
  sopt.max_filaments_per_dim = 2;
  sopt.plane.strips = 9;
  const core::DirectInductanceModel model(&tech(), 6, planes, sopt);
  const core::SegmentRlc seg = core::extract_segment_rlc(blk, model);

  // --- invariants on the extraction ---
  for (double r : seg.resistance) {
    EXPECT_GT(r, 0.0);
    EXPECT_TRUE(std::isfinite(r));
  }
  const std::size_t nl = seg.l_traces.size();
  for (std::size_t i = 0; i < nl; ++i) {
    EXPECT_GT(seg.inductance(i, i), 0.0);
    for (std::size_t j = 0; j < nl; ++j) {
      EXPECT_TRUE(std::isfinite(seg.inductance(i, j)));
      EXPECT_NEAR(seg.inductance(i, j), seg.inductance(j, i),
                  1e-6 * seg.inductance(i, i));
      if (i != j) {
        // Passivity: |M| < sqrt(Li Lj).
        EXPECT_LT(std::abs(seg.inductance(i, j)),
                  std::sqrt(seg.inductance(i, i) * seg.inductance(j, j)));
      }
    }
  }
  for (double c : seg.cap_ground) EXPECT_GT(c, 0.0);
  for (double c : seg.cap_coupling) EXPECT_GT(c, 0.0);

  // --- stamping + a short transient must stay finite and settle ---
  ckt::Netlist nlst;
  const ckt::NodeId vin = nlst.add_node();
  const ckt::NodeId buf = nlst.add_node();
  nlst.add_vsource(vin, ckt::kGround,
                   ckt::SourceWaveform::ramp(1.8, 100e-12));
  nlst.add_resistor(vin, buf, uni(15.0, 80.0));
  core::LadderOptions lopt;
  lopt.sections = static_cast<int>(pick_uint(1, 5));
  std::vector<ckt::NodeId> ins(blk.signal_indices().size(), buf);
  for (std::size_t k = 1; k < ins.size(); ++k) ins[k] = nlst.add_node();
  for (std::size_t k = 1; k < ins.size(); ++k)
    nlst.add_resistor(buf, ins[k], 1.0);  // weakly tie extra signals
  const auto outs = core::stamp_segment(nlst, blk, seg, ins, lopt);
  for (const ckt::NodeId o : outs)
    nlst.add_capacitor(o, ckt::kGround, uni(20e-15, 300e-15));

  ckt::TransientOptions topt;
  topt.t_stop = 3e-9;
  topt.dt = 1e-12;
  const ckt::TransientResult res = ckt::simulate(nlst, topt);
  for (const ckt::NodeId o : outs) {
    const ckt::Waveform w = res.waveform(o);
    for (std::size_t s = 0; s < w.size(); ++s)
      ASSERT_TRUE(std::isfinite(w.sample(s))) << "seed "
                                              << GetParam().seed;
    // Linear passive network driven to 1.8 V: bounded ringing only.
    EXPECT_LT(w.max(), 4.0);
    EXPECT_GT(w.min(), -2.5);
    EXPECT_NEAR(w.final(), 1.8, 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Values(FuzzCase{1}, FuzzCase{2},
                                           FuzzCase{3}, FuzzCase{5},
                                           FuzzCase{8}, FuzzCase{13},
                                           FuzzCase{21}, FuzzCase{34},
                                           FuzzCase{55}, FuzzCase{89}));

}  // namespace
}  // namespace rlcx
