// Tests for the N-D inductance table: lookup, range checks, persistence
// (text and versioned binary formats, docs/table-format.md).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "core/table.h"
#include "diag/error.h"

namespace rlcx::core {
namespace {

NdTable make_2d() {
  const std::vector<double> w{1.0, 2.0, 3.0};
  const std::vector<double> l{10.0, 20.0};
  std::vector<double> vals;
  for (double wi : w)
    for (double li : l) vals.push_back(wi * 100.0 + li);
  return NdTable({"width", "length"}, {w, l}, vals);
}

TEST(NdTable, ReproducesGridValues) {
  const NdTable t = make_2d();
  EXPECT_NEAR(t.lookup({1.0, 10.0}), 110.0, 1e-9);
  EXPECT_NEAR(t.lookup({3.0, 20.0}), 320.0, 1e-9);
  EXPECT_NEAR(t.at({2, 1}), 320.0, 1e-12);
}

TEST(NdTable, InterpolatesLinearData) {
  // The values are linear in both axes, which splines reproduce exactly.
  const NdTable t = make_2d();
  EXPECT_NEAR(t.lookup({1.5, 15.0}), 165.0, 1e-9);
  EXPECT_NEAR(t.lookup({2.7, 12.0}), 282.0, 1e-9);
}

TEST(NdTable, InRangeDetection) {
  const NdTable t = make_2d();
  EXPECT_TRUE(t.in_range({1.5, 15.0}));
  EXPECT_FALSE(t.in_range({0.5, 15.0}));
  EXPECT_FALSE(t.in_range({1.5, 25.0}));
  EXPECT_THROW(t.in_range({1.0}), std::invalid_argument);
}

TEST(NdTable, LinearExtrapolationBeyondGrid) {
  const NdTable t = make_2d();
  // Linear data extrapolates exactly.
  EXPECT_NEAR(t.lookup({4.0, 10.0}), 410.0, 1e-8);
}

TEST(NdTable, ExtrapolationCounterTracksCoverage) {
  const NdTable t = make_2d();
  EXPECT_EQ(t.extrapolation_count(), 0u);
  t.lookup({1.5, 15.0});  // inside
  EXPECT_EQ(t.extrapolation_count(), 0u);
  t.lookup({4.0, 15.0});  // outside width axis
  t.lookup({1.5, 25.0});  // outside length axis
  EXPECT_EQ(t.extrapolation_count(), 2u);
  NdTable copy = t;
  copy.reset_extrapolation_count();
  EXPECT_EQ(copy.extrapolation_count(), 0u);
}

TEST(NdTable, SaveLoadRoundTrip) {
  const NdTable t = make_2d();
  std::stringstream ss;
  t.save(ss);
  const NdTable r = NdTable::load(ss);
  EXPECT_EQ(r.dims(), 2u);
  EXPECT_EQ(r.axis_names()[0], "width");
  EXPECT_EQ(r.axis_names()[1], "length");
  for (double w = 1.0; w <= 3.0; w += 0.37)
    for (double l = 10.0; l <= 20.0; l += 2.3)
      EXPECT_NEAR(r.lookup({w, l}), t.lookup({w, l}), 1e-12);
}

TEST(NdTable, LoadRejectsGarbage) {
  std::stringstream bad1("not-a-table 1\n");
  EXPECT_THROW(NdTable::load(bad1), std::runtime_error);
  std::stringstream bad2("rlcx-table 9\n");
  EXPECT_THROW(NdTable::load(bad2), std::runtime_error);
  std::stringstream bad3("rlcx-table 1\n2\nwidth 3 1 2 3\n");
  EXPECT_THROW(NdTable::load(bad3), std::runtime_error);
}

TEST(NdTable, FileRoundTrip) {
  const NdTable t = make_2d();
  const std::string path = "/tmp/rlcx_table_test.txt";
  t.save_file(path);
  const NdTable r = NdTable::load_file(path);
  EXPECT_NEAR(r.lookup({2.0, 15.0}), t.lookup({2.0, 15.0}), 1e-12);
  EXPECT_THROW(NdTable::load_file("/nonexistent/nope.txt"),
               std::runtime_error);
}

TEST(NdTable, ConstructorValidation) {
  EXPECT_THROW(NdTable({"a"}, {{1.0, 2.0}, {1.0, 2.0}}, {1, 2, 3, 4}),
               std::invalid_argument);
  EXPECT_THROW(NdTable({"a"}, {{1.0, 2.0}}, {1.0, 2.0, 3.0}),
               std::invalid_argument);
}

NdTable make_4d() {
  const std::vector<double> ax{1.0, 2.0, 3.0};
  std::vector<double> vals;
  for (double a : ax)
    for (double b : ax)
      for (double c : ax)
        for (double d : ax) vals.push_back(a + 2 * b + 4 * c + 8 * d);
  return NdTable({"w1", "w2", "s", "l"}, {ax, ax, ax, ax}, vals);
}

TEST(NdTableBinary, RoundTripIsBitExact) {
  const NdTable t = make_2d();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  t.save_binary(ss);
  const NdTable r = NdTable::load_binary(ss);
  ASSERT_EQ(r.dims(), 2u);
  EXPECT_EQ(r.axis_names(), t.axis_names());
  EXPECT_EQ(r.axes(), t.axes());
  EXPECT_EQ(r.values(), t.values());
  // Same grid bytes -> same spline -> bit-identical lookups, on and off
  // grid (EXPECT_EQ, not NEAR: the cache contract is bit-exactness).
  for (double w = 1.0; w <= 3.5; w += 0.37)
    for (double l = 9.0; l <= 21.0; l += 2.3)
      EXPECT_EQ(r.lookup({w, l}), t.lookup({w, l}));
}

TEST(NdTableBinary, RoundTripEmptyTable) {
  const NdTable t;
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  t.save_binary(ss);
  const NdTable r = NdTable::load_binary(ss);
  EXPECT_EQ(r.dims(), 0u);
}

TEST(NdTableBinary, RoundTripOneDimensional) {
  const NdTable t({"width"}, {{1.0, 2.0, 4.0}}, {1.0, 4.0, 16.0});
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  t.save_binary(ss);
  const NdTable r = NdTable::load_binary(ss);
  ASSERT_EQ(r.dims(), 1u);
  EXPECT_EQ(r.lookup({3.0}), t.lookup({3.0}));
}

TEST(NdTableBinary, RoundTripFourDimensionalMutual) {
  const NdTable t = make_4d();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  t.save_binary(ss);
  const NdTable r = NdTable::load_binary(ss);
  ASSERT_EQ(r.dims(), 4u);
  EXPECT_EQ(r.values(), t.values());
  EXPECT_EQ(r.lookup({1.5, 2.5, 1.2, 2.9}), t.lookup({1.5, 2.5, 1.2, 2.9}));
}

TEST(NdTableBinary, RejectsCorruptedHeader) {
  std::stringstream garbage("XXXXjunkjunkjunk",
                            std::ios::in | std::ios::binary);
  EXPECT_THROW(NdTable::load_binary(garbage), std::runtime_error);
  std::stringstream empty("", std::ios::in | std::ios::binary);
  EXPECT_THROW(NdTable::load_binary(empty), std::runtime_error);
}

TEST(NdTableBinary, RejectsVersionMismatch) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  make_2d().save_binary(ss);
  std::string bytes = ss.str();
  bytes[4] = 99;  // u32 version lives at offset 4 (docs/table-format.md)
  std::stringstream patched(bytes, std::ios::in | std::ios::binary);
  try {
    NdTable::load_binary(patched);
    FAIL() << "version 99 must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(NdTableBinary, RejectsTruncation) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  make_2d().save_binary(ss);
  const std::string bytes = ss.str();
  std::stringstream cut(bytes.substr(0, bytes.size() - 5),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(NdTable::load_binary(cut), std::runtime_error);
}

TEST(NdTable, ConstructorRejectsNonFiniteValues) {
  std::vector<double> vals{110.0, 120.0, 210.0, 220.0, 310.0,
                           std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(NdTable({"width", "length"}, {{1.0, 2.0, 3.0}, {10.0, 20.0}},
                       vals),
               rlcx::diag::NumericError);
}

TEST(NdTableBinary, RejectsNonFiniteValues) {
  const NdTable t = make_2d();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  t.save_binary(ss);
  // Poison the last stored double (values are the file's tail) with NaN.
  std::string blob = ss.str();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(blob.data() + blob.size() - sizeof nan, &nan, sizeof nan);
  std::stringstream bad(blob, std::ios::in | std::ios::binary);
  EXPECT_THROW(NdTable::load_binary(bad), std::runtime_error);
  // The category is numeric — a poisoned value, not a framing problem.
  std::stringstream bad2(blob, std::ios::in | std::ios::binary);
  EXPECT_THROW(NdTable::load_binary(bad2), rlcx::diag::NumericError);
}

TEST(NdTableBinary, LoadFileSniffsBothFormats) {
  const NdTable t = make_2d();
  const std::string bin_path = "/tmp/rlcx_table_test_bin.tbl";
  const std::string txt_path = "/tmp/rlcx_table_test_txt.tbl";
  t.save_file_binary(bin_path);
  t.save_file(txt_path);
  const NdTable rb = NdTable::load_file(bin_path);
  const NdTable rt = NdTable::load_file(txt_path);
  EXPECT_EQ(rb.values(), t.values());
  EXPECT_NEAR(rt.lookup({2.0, 15.0}), t.lookup({2.0, 15.0}), 1e-12);
}

TEST(NdTable, FourDimensionalMutualShape) {
  // The mutual table shape of the paper: (w1, w2, s, l).
  const std::vector<double> ax{1.0, 2.0};
  std::vector<double> vals;
  for (double a : ax)
    for (double b : ax)
      for (double c : ax)
        for (double d : ax) vals.push_back(a + 2 * b + 4 * c + 8 * d);
  const NdTable t({"w1", "w2", "s", "l"}, {ax, ax, ax, ax}, vals);
  EXPECT_EQ(t.dims(), 4u);
  EXPECT_NEAR(t.lookup({1.5, 1.5, 1.5, 1.5}), 1.5 * 15.0, 1e-9);
}

}  // namespace
}  // namespace rlcx::core
