// Cancellation determinism through the rt pool: a cancelled parallel_for
// unwinds as a typed fault at chunk boundaries only, so every chunk's
// writes are all-or-nothing regardless of pool width, and warnings raised
// from worker threads inside one region are deduplicated.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "diag/error.h"
#include "diag/warnings.h"
#include "rt/parallel.h"
#include "rt/pool.h"
#include "run/control.h"

namespace rlcx::run {
namespace {

std::vector<int> pool_widths() {
  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  return {1, 2, 7, hw};
}

// Cancel after roughly half the chunks ran; assert the fault type and that
// every chunk either wrote all of its slots or none of them (the partial-
// write freedom ISSUE.md demands of cancellation).
TEST(CancelParallelFor, ChunksAreAllOrNothingAtEveryPoolWidth) {
  // Chunk count far above any plausible pool width: once half the chunks
  // have completed and requested cancellation, unclaimed chunks remain,
  // and each of those must observe the flag at its pre-body checkpoint.
  constexpr std::size_t kRange = 2048;
  constexpr std::size_t kGrain = 8;
  constexpr std::size_t kChunks = kRange / kGrain;
  for (int width : pool_widths()) {
    rt::Pool pool(width);
    RunControl rc;
    ScopedRunControl scope(rc);
    std::vector<std::atomic<int>> written(kRange);
    for (auto& w : written) w.store(0, std::memory_order_relaxed);
    std::atomic<std::size_t> chunks_run{0};

    const auto body = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        written[i].fetch_add(1, std::memory_order_relaxed);
      if (chunks_run.fetch_add(1, std::memory_order_relaxed) + 1 ==
          kChunks / 2)
        rc.token.request();
    };
    bool cancelled = false;
    try {
      if (width == 1) {
        // A one-worker parallel_for collapses to a single inline chunk by
        // design; the chunk-granularity serial path (what the ordered
        // reduction uses) is where width-1 per-chunk cancellation lives.
        rt::detail::parallel_for_chunked(0, kRange, kGrain, &pool, body);
      } else {
        rt::ParallelOptions popt;
        popt.grain = kGrain;
        popt.pool = &pool;
        rt::parallel_for(0, kRange, body, popt);
      }
    } catch (const diag::CancelledError& e) {
      cancelled = true;
      EXPECT_EQ(e.category(), diag::Category::kCancelled);
    }
    EXPECT_TRUE(cancelled) << "width " << width;

    // Chunk atomicity: within each grain-sized chunk, either every slot
    // was written exactly once or none was.
    for (std::size_t c = 0; c < kChunks; ++c) {
      const int first = written[c * kGrain].load(std::memory_order_relaxed);
      EXPECT_TRUE(first == 0 || first == 1);
      for (std::size_t i = 0; i < kGrain; ++i)
        EXPECT_EQ(written[c * kGrain + i].load(std::memory_order_relaxed),
                  first)
            << "width " << width << " chunk " << c << " slot " << i;
    }
    // Cancellation was prompt: not every chunk ran.
    EXPECT_LT(chunks_run.load(), kChunks) << "width " << width;
  }
}

TEST(CancelParallelFor, DeadlineUnwindsAsTypedFault) {
  for (int width : pool_widths()) {
    rt::Pool pool(width);
    RunControl rc;
    rc.deadline = Deadline::after(0.0);  // already expired
    ScopedRunControl scope(rc);
    rt::ParallelOptions popt;
    popt.grain = 1;
    popt.pool = &pool;
    std::atomic<std::size_t> ran{0};
    EXPECT_THROW(rt::parallel_for(0, 64,
                                  [&](std::size_t, std::size_t) {
                                    ran.fetch_add(1,
                                                  std::memory_order_relaxed);
                                  },
                                  popt),
                 diag::DeadlineExceeded)
        << "width " << width;
    // The pre-body checkpoint fires before any chunk runs.
    EXPECT_EQ(ran.load(), 0u) << "width " << width;
  }
}

TEST(CancelParallelFor, UncancelledRunIsUnaffectedByInstalledControl) {
  rt::Pool pool(4);
  RunControl rc;
  ScopedRunControl scope(rc);
  std::vector<int> out(100, 0);
  rt::ParallelOptions popt;
  popt.grain = 4;
  popt.pool = &pool;
  rt::parallel_for(0, out.size(),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t i = lo; i < hi; ++i)
                       out[i] = static_cast<int>(i);
                   },
                   popt);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(CancelParallelFor, SerialInlinePathAlsoCheckpoints) {
  // One-chunk ranges run inline on the caller; cancellation must still be
  // observed there, not only on pool workers.
  RunControl rc;
  rc.token.request();
  ScopedRunControl scope(rc);
  bool ran = false;
  EXPECT_THROW(
      rt::parallel_for(0, 1, [&](std::size_t, std::size_t) { ran = true; }),
      diag::CancelledError);
  EXPECT_FALSE(ran);
}

// Satellite: warnings raised from rt worker threads inside one parallel
// region are deduplicated to a single emission.
// Two drivers on separate threads install independent controls; each
// thread's pool-fanned work must observe its *own* driver's control (the
// submit-time ambient snapshot rt::Pool adopts around task bodies), not
// whichever scope happens to be innermost process-wide.  This is the
// property the `rlcx serve` daemon's concurrent per-request deadlines
// rest on.
TEST(ScopedControl, ConcurrentScopesIsolatePerSubmitter) {
  rt::Pool pool(4);
  RunControl cancelled_rc;
  cancelled_rc.token.request();
  RunControl live_rc;

  std::atomic<int> cancelled_seen{0}, live_seen{0};
  std::thread cancelled_driver([&] {
    ScopedRunControl control(cancelled_rc);
    rt::TaskGroup group(pool);
    for (int i = 0; i < 8; ++i)
      group.run([&] { cancelled_seen += stop_requested() ? 1 : 0; });
    group.wait();
  });
  std::thread live_driver([&] {
    ScopedRunControl control(live_rc);
    rt::TaskGroup group(pool);
    for (int i = 0; i < 8; ++i)
      group.run([&] { live_seen += stop_requested() ? 1 : 0; });
    group.wait();
  });
  cancelled_driver.join();
  live_driver.join();

  EXPECT_EQ(cancelled_seen.load(), 8);
  EXPECT_EQ(live_seen.load(), 0);
}

// A nested cli::run-style scope chains by copying the ambient control:
// current_control() must surface the innermost scope of the calling
// thread so the copy shares its cancellation flag and deadline.
TEST(ScopedControl, CurrentControlSnapshotsTheInnermostScope) {
  RunControl none;
  EXPECT_FALSE(current_control(&none));

  RunControl outer;
  outer.deadline = Deadline::after(1000.0);
  ScopedRunControl scope(outer);
  RunControl seen;
  ASSERT_TRUE(current_control(&seen));
  EXPECT_EQ(seen.deadline.when(), outer.deadline.when());
  seen.token.request();  // the copy shares the ambient flag...
  EXPECT_TRUE(outer.token.requested());
  EXPECT_TRUE(stop_requested());  // ...so the ambient scope observes it
}

TEST(WarnDedup, IdenticalWarningsInsideOneRegionEmitOnce) {
  rt::Pool pool(4);
  std::vector<diag::Warning> seen;
  std::mutex seen_m;
  diag::ScopedWarningHandler handler([&](const diag::Warning& w) {
    std::lock_guard<std::mutex> lock(seen_m);
    seen.push_back(w);
  });

  rt::ParallelOptions popt;
  popt.grain = 1;
  popt.pool = &pool;
  rt::parallel_for(0, 64,
                   [&](std::size_t, std::size_t) {
                     diag::emit_warning(diag::Category::kNumeric, "sor",
                                        "slow convergence");
                   },
                   popt);
  EXPECT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].message, "slow convergence");

  // Distinct warnings all get through.
  seen.clear();
  rt::parallel_for(0, 8,
                   [&](std::size_t lo, std::size_t) {
                     diag::emit_warning(diag::Category::kNumeric, "sor",
                                        "chunk " + std::to_string(lo));
                   },
                   popt);
  EXPECT_EQ(seen.size(), 8u);

  // And the dedup window closes with the region: the same warning emitted
  // after the loop is not suppressed.
  seen.clear();
  diag::emit_warning(diag::Category::kNumeric, "sor", "slow convergence");
  EXPECT_EQ(seen.size(), 1u);
}

}  // namespace
}  // namespace rlcx::run
