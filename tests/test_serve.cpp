// Tests for the `rlcx serve` daemon: the wire protocol against its
// normative spec (docs/serve-protocol.md), admission control, and the
// full request path through Server::handle_connection — including the
// warm-vs-cold bit-identity guarantee.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.h"
#include "diag/error.h"
#include "run/control.h"
#include "run/fault_injection.h"
#include "run/journal.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/table_store.h"

namespace rlcx::serve {
namespace {

std::string read_protocol_doc() {
  const std::filesystem::path path =
      std::filesystem::path(RLCX_SOURCE_DIR) / "docs" / "serve-protocol.md";
  std::ifstream is(path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

std::string hex_byte(unsigned value) {
  char b[8];
  std::snprintf(b, sizeof(b), "0x%02x", value);
  return b;
}

TEST(Protocol, HeaderLayoutMatchesSpec) {
  ASSERT_EQ(kHeaderBytes, 8u);
  const std::string h = encode_header(FrameKind::kRequest, 5);
  ASSERT_EQ(h.size(), kHeaderBytes);
  EXPECT_EQ(static_cast<unsigned char>(h[0]), kMagic0);  // 'R'
  EXPECT_EQ(static_cast<unsigned char>(h[1]), kMagic1);  // 'X'
  EXPECT_EQ(h[0], 'R');
  EXPECT_EQ(h[1], 'X');
  EXPECT_EQ(static_cast<unsigned char>(h[2]), kProtocolVersion);
  EXPECT_EQ(static_cast<unsigned char>(h[3]), 0x01u);  // request kind
  EXPECT_EQ(static_cast<unsigned char>(h[4]), 5u);
  EXPECT_EQ(static_cast<unsigned char>(h[5]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(h[6]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(h[7]), 0u);
}

TEST(Protocol, LengthFieldIsLittleEndian) {
  // 0x012345 = 74565 bytes: byte 4 = 0x45, byte 5 = 0x23, byte 6 = 0x01.
  const std::string h = encode_header(FrameKind::kResponse, 0x012345);
  EXPECT_EQ(static_cast<unsigned char>(h[4]), 0x45u);
  EXPECT_EQ(static_cast<unsigned char>(h[5]), 0x23u);
  EXPECT_EQ(static_cast<unsigned char>(h[6]), 0x01u);
  EXPECT_EQ(static_cast<unsigned char>(h[7]), 0x00u);
}

TEST(Protocol, FrameRoundTripThroughMemoryStream) {
  MemoryStream out;
  write_frame(out, FrameKind::kRequest,
              "extract\n--structure\ncpw\n--length-um\n6000");
  write_frame(out, FrameKind::kResponse, std::string("a\0b", 3));

  MemoryStream in(out.output());
  Frame f;
  ASSERT_TRUE(read_frame(in, &f));
  EXPECT_EQ(f.kind, FrameKind::kRequest);
  EXPECT_EQ(f.payload, "extract\n--structure\ncpw\n--length-um\n6000");
  ASSERT_TRUE(read_frame(in, &f));
  EXPECT_EQ(f.kind, FrameKind::kResponse);
  EXPECT_EQ(f.payload, std::string("a\0b", 3));
  EXPECT_FALSE(read_frame(in, &f));  // clean EOF
}

TEST(Protocol, CleanEofAtFrameBoundaryReturnsFalse) {
  MemoryStream in("");
  Frame f;
  EXPECT_FALSE(read_frame(in, &f));
}

TEST(Protocol, FramingViolationsAreTypedIoErrors) {
  Frame f;
  {
    MemoryStream in("XYzzzzzz");  // bad magic
    EXPECT_THROW(read_frame(in, &f), diag::IoError);
  }
  {
    std::string h = encode_header(FrameKind::kRequest, 0);
    h[2] = 0x7f;  // unsupported version
    MemoryStream in(h);
    EXPECT_THROW(read_frame(in, &f), diag::IoError);
  }
  {
    std::string h = encode_header(FrameKind::kRequest, 0);
    h[3] = 0x09;  // unknown kind
    MemoryStream in(h);
    EXPECT_THROW(read_frame(in, &f), diag::IoError);
  }
  {
    std::string h = encode_header(FrameKind::kRequest, 0);
    h[7] = 0x7f;  // length way over kMaxPayloadBytes
    MemoryStream in(h);
    EXPECT_THROW(read_frame(in, &f), diag::IoError);
  }
  {
    MemoryStream in(encode_header(FrameKind::kRequest, 4).substr(0, 5));
    EXPECT_THROW(read_frame(in, &f), diag::IoError);  // truncated header
  }
  {
    MemoryStream in(encode_header(FrameKind::kRequest, 4) + "ab");
    EXPECT_THROW(read_frame(in, &f), diag::IoError);  // truncated payload
  }
  EXPECT_THROW(encode_header(FrameKind::kRequest, kMaxPayloadBytes + 1),
               diag::UsageError);
}

TEST(Protocol, ResponseRoundTripPreservesBinaryStreams) {
  Response r;
  r.status = 4;
  r.label = status_label(4);
  r.out = std::string("line\nwith\0byte", 14);
  r.err = "[numeric] lu: zero pivot\n";
  const Response back = parse_response(encode_response(r));
  EXPECT_EQ(back.status, 4);
  EXPECT_EQ(back.label, "numeric");
  EXPECT_EQ(back.out, r.out);
  EXPECT_EQ(back.err, r.err);
}

TEST(Protocol, StatusLabelsFollowTheExitCodeContract) {
  EXPECT_STREQ(status_label(0), "ok");
  EXPECT_STREQ(status_label(1), "internal");
  EXPECT_STREQ(status_label(2), "usage");
  EXPECT_STREQ(status_label(3), "invalid-input");
  EXPECT_STREQ(status_label(4), "numeric");
  EXPECT_STREQ(status_label(5), "cancelled");
  EXPECT_STREQ(status_label(6), "overloaded");
  EXPECT_STREQ(status_label(7), "resource-exhausted");
  EXPECT_STREQ(status_label(99), "unknown");
}

TEST(Protocol, MalformedResponsePayloadIsTypedIoError) {
  EXPECT_THROW(parse_response(""), diag::IoError);
  EXPECT_THROW(parse_response("status x ok\nout 0\nerr 0\n\n"),
               diag::IoError);
  EXPECT_THROW(parse_response("status 0 ok\nout 5\nerr 0\n\nab"),
               diag::IoError);  // body shorter than promised
  EXPECT_THROW(parse_response("status 0 ok\nout 0\nerr 0\n"),
               diag::IoError);  // missing blank line
}

TEST(Protocol, RequestJoinSplitRoundTrip) {
  const std::vector<std::string> argv = {"extract", "--structure", "cpw",
                                         "--length-um", "6000"};
  EXPECT_EQ(split_request(join_request(argv)), argv);
  EXPECT_TRUE(split_request("").empty());
  EXPECT_EQ(join_request({}), "");
  EXPECT_EQ(split_request("ping"), std::vector<std::string>{"ping"});
}

// docs/serve-protocol.md is the normative artifact: the constants the
// implementation compiles must appear in the document verbatim, so the
// spec can never drift silently from the code.
TEST(Protocol, SpecQuotesTheImplementationConstants) {
  const std::string doc = read_protocol_doc();
  ASSERT_FALSE(doc.empty()) << "docs/serve-protocol.md missing";
  EXPECT_NE(doc.find(hex_byte(kMagic0)), std::string::npos);  // 0x52
  EXPECT_NE(doc.find(hex_byte(kMagic1)), std::string::npos);  // 0x58
  EXPECT_NE(doc.find(hex_byte(kProtocolVersion)), std::string::npos);
  EXPECT_NE(doc.find(std::to_string(kMaxPayloadBytes)), std::string::npos);
  EXPECT_NE(doc.find("little-endian"), std::string::npos);
  EXPECT_NE(doc.find("0x01"), std::string::npos);  // request kind
  EXPECT_NE(doc.find("0x02"), std::string::npos);  // response kind
  EXPECT_NE(doc.find("0x03"), std::string::npos);  // error kind
  EXPECT_NE(doc.find("status <code> <label>"), std::string::npos);
  EXPECT_NE(doc.find("out <n>"), std::string::npos);
  EXPECT_NE(doc.find("err <m>"), std::string::npos);
  for (int code = 0; code <= 7; ++code)
    EXPECT_NE(doc.find(std::string("`") + status_label(code) + "`"),
              std::string::npos)
        << "label missing from spec: " << status_label(code);
}

TEST(Admission, OverflowRejectsImmediately) {
  AdmissionQueue q(/*max_active=*/1, /*max_queued=*/0);
  run::CancelToken shutdown;
  EXPECT_EQ(q.enter(shutdown), AdmissionQueue::Admission::kAdmitted);
  EXPECT_EQ(q.enter(shutdown), AdmissionQueue::Admission::kOverloaded);
  q.leave();
  EXPECT_EQ(q.enter(shutdown), AdmissionQueue::Admission::kAdmitted);
  q.leave();
  const AdmissionQueue::Stats s = q.stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.active, 0);
}

TEST(Admission, ShutdownCancelsAQueuedWaiter) {
  AdmissionQueue q(/*max_active=*/1, /*max_queued=*/4);
  run::CancelToken shutdown;
  EXPECT_EQ(q.enter(shutdown), AdmissionQueue::Admission::kAdmitted);
  shutdown.request();
  EXPECT_EQ(q.enter(shutdown), AdmissionQueue::Admission::kCancelled);
  q.leave();
}

TEST(Admission, BoundsAreValidated) {
  EXPECT_THROW(AdmissionQueue(0, 4), diag::UsageError);
  EXPECT_THROW(AdmissionQueue(1, -1), diag::UsageError);
}

// ---------------------------------------------------------------------
// Full request path through Server::handle_connection over an in-memory
// transport (the same bytes a socket would carry).

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("rlcx_test_serve_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(counter()++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::vector<std::string> extract_argv() {
  // A signals-only bus: planes kNone, no grounds, so the request is a
  // pure table lookup once the store is warm.
  return {"extract",  "--structure", "cpw",      "--length-um", "6000",
          "--traces", "s:10,s:5",    "--spacings", "2"};
}

ServeConfig test_config(const TempDir& dir) {
  ServeConfig cfg;
  cfg.cache_dir = (dir.path / "cache").string();
  cfg.max_tables = 4;
  cfg.max_active = 2;
  cfg.queue_depth = 4;
  return cfg;
}

/// Feeds `frames` to a fresh connection, returns the reply frames.
std::vector<Frame> drive(Server& server, const std::string& frames) {
  MemoryStream stream(frames);
  server.handle_connection(stream);
  MemoryStream replies(stream.output());
  std::vector<Frame> out;
  Frame f;
  while (read_frame(replies, &f)) out.push_back(f);
  return out;
}

std::string from_structure_line(const std::string& text) {
  const std::size_t at = text.find("structure:");
  EXPECT_NE(at, std::string::npos) << text;
  return at == std::string::npos ? text : text.substr(at);
}

TEST(ServeFlow, WarmResultIsBitIdenticalToColdCli) {
  const TempDir dir;
  const ServeConfig cfg = test_config(dir);

  // Cold: the one-shot CLI path through the on-disk cache.
  std::vector<std::string> cold_argv = extract_argv();
  cold_argv.push_back("--table-cache");
  cold_argv.push_back(cfg.cache_dir);
  std::ostringstream cold_out, cold_err;
  ASSERT_EQ(cli::run(cold_argv, cold_out, cold_err), 0) << cold_err.str();

  std::ostringstream diag;
  Server server(cfg, diag);
  const std::string request =
      encode_frame(FrameKind::kRequest, join_request(extract_argv()));
  const std::vector<Frame> replies = drive(server, request + request);

  ASSERT_EQ(replies.size(), 2u);
  for (const Frame& f : replies) {
    EXPECT_EQ(f.kind, FrameKind::kResponse);
    const Response r = parse_response(f.payload);
    EXPECT_EQ(r.status, 0) << r.err;
    // Byte-for-byte identical from the first report line on (the
    // provenance line above it names the table's source: on-disk cache
    // cold, warm store here).
    EXPECT_EQ(from_structure_line(r.out),
              from_structure_line(cold_out.str()));
  }
  // First request missed the warm store (served from the on-disk cache
  // with zero solves), the second hit it.
  const Response first = parse_response(replies[0].payload);
  const Response second = parse_response(replies[1].payload);
  EXPECT_NE(first.out.find("table store: warm miss"), std::string::npos);
  EXPECT_NE(first.out.find("0 field solves"), std::string::npos);
  EXPECT_NE(second.out.find("table store: warm hit"), std::string::npos);
}

TEST(ServeFlow, MalformedPayloadGetsErrorFrameAndConnectionSurvives) {
  const TempDir dir;
  std::ostringstream diag;
  Server server(test_config(dir), diag);
  const std::vector<Frame> replies =
      drive(server, encode_frame(FrameKind::kRequest, "") +
                        encode_frame(FrameKind::kRequest, "ping"));
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].kind, FrameKind::kError);
  const Response bad = parse_response(replies[0].payload);
  EXPECT_EQ(bad.status, 2);
  EXPECT_EQ(bad.label, "usage");
  // The connection survived: the next request was answered normally.
  EXPECT_EQ(replies[1].kind, FrameKind::kResponse);
  EXPECT_EQ(parse_response(replies[1].payload).out, "pong\n");
}

TEST(ServeFlow, LostSyncClosesConnectionAfterErrorFrame) {
  const TempDir dir;
  std::ostringstream diag;
  Server server(test_config(dir), diag);
  // Bad magic, then a well-formed ping that must NOT be answered: the
  // stream is out of sync and the connection closes.
  const std::vector<Frame> replies =
      drive(server, "XXXXXXXX" + encode_frame(FrameKind::kRequest, "ping"));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].kind, FrameKind::kError);
  EXPECT_EQ(parse_response(replies[0].payload).status, 3);  // io
}

TEST(ServeFlow, DisallowedCommandsStayOffTheWire) {
  const TempDir dir;
  std::ostringstream diag;
  Server server(test_config(dir), diag);
  for (const char* cmd : {"batch", "tables", "cache", "serve", "query"}) {
    const std::vector<Frame> replies =
        drive(server, encode_frame(FrameKind::kRequest, cmd));
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].kind, FrameKind::kError);
    const Response r = parse_response(replies[0].payload);
    EXPECT_EQ(r.status, 2) << cmd;
    EXPECT_NE(r.err.find("not allowed over the wire"), std::string::npos);
  }
}

TEST(ServeFlow, ExpiredRequestDeadlineReturnsStatusFive) {
  const TempDir dir;
  ServeConfig cfg = test_config(dir);
  cfg.request_deadline_s = 1e-6;  // expired before the first checkpoint
  std::ostringstream diag;
  Server server(cfg, diag);
  // A cold extract must characterise tables — work with checkpoints —
  // so the expired deadline unwinds it.
  const std::vector<Frame> replies = drive(
      server, encode_frame(FrameKind::kRequest, join_request(extract_argv())));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].kind, FrameKind::kResponse);  // executed, then unwound
  const Response r = parse_response(replies[0].payload);
  EXPECT_EQ(r.status, 5);
  EXPECT_EQ(r.label, "cancelled");
  EXPECT_NE(r.err.find("deadline"), std::string::npos) << r.err;
}

TEST(ServeFlow, AdmissionOverflowReturnsStatusSix) {
  const TempDir dir;
  ServeConfig cfg = test_config(dir);
  cfg.max_active = 1;
  cfg.queue_depth = 0;
  std::ostringstream diag;
  Server server(cfg, diag);
  // Occupy the single execution slot, then request work.
  ASSERT_EQ(server.admission().enter(server.shutdown_token()),
            AdmissionQueue::Admission::kAdmitted);
  const std::string request =
      encode_frame(FrameKind::kRequest, join_request(extract_argv()));
  {
    const std::vector<Frame> replies = drive(server, request);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].kind, FrameKind::kError);
    const Response r = parse_response(replies[0].payload);
    EXPECT_EQ(r.status, 6);
    EXPECT_EQ(r.label, "overloaded");
    EXPECT_NE(r.err.find("[overloaded]"), std::string::npos);
  }
  server.admission().leave();
  const std::vector<Frame> replies = drive(server, request);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(parse_response(replies[0].payload).status, 0);
}

TEST(ServeFlow, ShutdownRequestDrainsTheConnection) {
  const TempDir dir;
  std::ostringstream diag;
  Server server(test_config(dir), diag);
  const std::vector<Frame> replies =
      drive(server, encode_frame(FrameKind::kRequest, "ping") +
                        encode_frame(FrameKind::kRequest, "shutdown") +
                        encode_frame(FrameKind::kRequest, "ping"));
  // The third request is never answered: shutdown drains the loop.
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(parse_response(replies[1].payload).out, "draining\n");
  EXPECT_TRUE(server.shutdown_token().requested());
}

TEST(ServeFlow, EveryRequestIsJournaled) {
  const TempDir dir;
  const ServeConfig cfg = test_config(dir);
  {
    std::ostringstream diag;
    Server server(cfg, diag);
    drive(server, encode_frame(FrameKind::kRequest, "ping") +
                      encode_frame(FrameKind::kRequest, "batch"));
  }
  const std::set<std::string> logged =
      run::BatchJournal::load(cfg.cache_dir + "/serve.journal");
  EXPECT_EQ(logged.count("r1-ping-x0"), 1u);
  EXPECT_EQ(logged.count("r2-batch-x2"), 1u);
}

TEST(ServeFlow, StatsReportWarmStoreAndAdmissionCounters) {
  const TempDir dir;
  std::ostringstream diag;
  Server server(test_config(dir), diag);
  const std::vector<Frame> replies = drive(
      server, encode_frame(FrameKind::kRequest,
                           join_request(extract_argv())) +
                  encode_frame(FrameKind::kRequest,
                               join_request(extract_argv())) +
                  encode_frame(FrameKind::kRequest, "stats"));
  ASSERT_EQ(replies.size(), 3u);
  const Response stats = parse_response(replies[2].payload);
  EXPECT_NE(stats.out.find("warm store: 1 hits, 1 misses"),
            std::string::npos)
      << stats.out;
  EXPECT_NE(stats.out.find("requests: 2 served"), std::string::npos);
  EXPECT_NE(stats.out.find("table cache "), std::string::npos);
}

// ------------------------------------------------- hostile-client defense

TEST(ServeHardening, PeerGoneBeforeReplyDoesNotKillTheDaemon) {
  // The SIGPIPE regression: a client that sends a request and closes
  // without reading the reply makes the daemon's reply write hit a dead
  // socket.  Without MSG_NOSIGNAL that raises SIGPIPE and kills this whole
  // test binary — surviving to the assertions below IS the test.
  const TempDir dir;
  std::ostringstream diag;
  Server server(test_config(dir), diag);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string request = encode_frame(FrameKind::kRequest, "ping");
  ASSERT_EQ(::write(fds[1], request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  ::close(fds[1]);  // peer gone before the reply is written
  FdStream stream(fds[0], fds[0]);
  server.handle_connection(stream);  // EPIPE inside, absorbed and counted
  ::close(fds[0]);

  // The daemon still serves, and the drop is visible in the stats.
  const std::vector<Frame> replies =
      drive(server, encode_frame(FrameKind::kRequest, "stats"));
  ASSERT_EQ(replies.size(), 1u);
  const Response stats = parse_response(replies[0].payload);
  EXPECT_EQ(stats.status, 0);
  EXPECT_NE(stats.out.find("1 peer disconnects"), std::string::npos)
      << stats.out;
}

TEST(ServeHardening, SlowLorisConnectionIsDroppedWithTypedGoodbye) {
  const TempDir dir;
  ServeConfig cfg = test_config(dir);
  cfg.idle_timeout_s = 0.2;
  std::ostringstream diag;
  Server server(cfg, diag);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread connection([&] {
    FdStream stream(fds[0], fds[0]);
    server.handle_connection(stream);
  });
  // Send nothing: the idle deadline must fire, emit a status-3 goodbye
  // frame, and close — not pin the connection thread forever.
  FdStream client(fds[1], fds[1]);
  Frame goodbye;
  ASSERT_TRUE(read_frame(client, &goodbye));
  connection.join();
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_EQ(goodbye.kind, FrameKind::kError);
  const Response r = parse_response(goodbye.payload);
  EXPECT_EQ(r.status, 3);
  EXPECT_NE(r.err.find("idle"), std::string::npos) << r.err;

  const std::vector<Frame> replies =
      drive(server, encode_frame(FrameKind::kRequest, "stats"));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_NE(parse_response(replies[0].payload)
                .out.find("1 idle disconnects"),
            std::string::npos);
}

TEST(ServeHardening, HealthAnswersWithoutAnAdmissionSlot) {
  const TempDir dir;
  ServeConfig cfg = test_config(dir);
  cfg.max_active = 1;
  cfg.queue_depth = 0;
  std::ostringstream diag;
  Server server(cfg, diag);
  // Saturate admission: real work is rejected with status 6...
  ASSERT_EQ(server.admission().enter(server.shutdown_token()),
            AdmissionQueue::Admission::kAdmitted);
  {
    const std::vector<Frame> replies = drive(
        server, encode_frame(FrameKind::kRequest,
                             join_request(extract_argv())));
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(parse_response(replies[0].payload).status, 6);
  }
  // ...but health still answers — it is the probe an operator uses to
  // tell "overloaded" from "dead", so it must not queue behind the load.
  const std::vector<Frame> replies =
      drive(server, encode_frame(FrameKind::kRequest, "health"));
  ASSERT_EQ(replies.size(), 1u);
  const Response health = parse_response(replies[0].payload);
  EXPECT_EQ(health.status, 0);
  EXPECT_EQ(health.out.substr(0, 8), "healthy\n") << health.out;
  EXPECT_NE(health.out.find("uptime-s "), std::string::npos);
  EXPECT_NE(health.out.find("active 1\n"), std::string::npos)
      << health.out;
  server.admission().leave();
}

TEST(ServeHardening, TransientAcceptFailureBacksOffAndRecovers) {
  struct InjectorReset {
    ~InjectorReset() { run::FaultInjector::global().clear(); }
  } reset;
  const TempDir dir;
  ServeConfig cfg = test_config(dir);
  cfg.socket_path = (dir.path / "s.sock").string();
  std::ostringstream diag;
  Server server(cfg, diag);
  // The first accept() reports EMFILE (injected): the loop must back off
  // and keep listening instead of dying — the next client connects fine.
  run::FaultInjector::global().set_schedule("accept_emfile:1");
  std::thread daemon([&] { server.run_socket(); });
  for (int i = 0; i < 500 && !std::filesystem::exists(cfg.socket_path);
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(std::filesystem::exists(cfg.socket_path));
  {
    Client client(cfg.socket_path);
    EXPECT_EQ(client.request({"ping"}).status, 0);
    const Response stats = client.request({"stats"});
    EXPECT_NE(stats.out.find("1 accept retries"), std::string::npos)
        << stats.out;
    client.request({"shutdown"});
  }
  daemon.join();
}

}  // namespace
}  // namespace rlcx::serve
