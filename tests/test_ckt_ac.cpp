// Validation of the AC small-signal engine against closed forms and against
// the transient engine.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "ckt/ac.h"
#include "ckt/transient.h"

namespace rlcx::ckt {
namespace {

TEST(Ac, RcLowPassMagnitudeAndPhase) {
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId out = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::dc(1.0));
  nl.add_resistor(in, out, 1e3);
  nl.add_capacitor(out, kGround, 1e-12);
  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e3 * 1e-12);

  // At the corner: |H| = 1/sqrt(2), phase -45 deg.
  const auto h = ac_transfer(nl, fc, out);
  EXPECT_NEAR(std::abs(h), 1.0 / std::numbers::sqrt2, 1e-6);
  EXPECT_NEAR(std::arg(h), -std::numbers::pi / 4.0, 1e-6);
  // A decade above: |H| ~ 0.0995.
  EXPECT_NEAR(std::abs(ac_transfer(nl, 10.0 * fc, out)),
              1.0 / std::sqrt(101.0), 1e-6);
}

TEST(Ac, SeriesRlcResonance) {
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId mid = nl.add_node();
  const NodeId out = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::dc(1.0));
  nl.add_resistor(in, mid, 5.0);
  nl.add_inductor(mid, out, 1e-9);
  nl.add_capacitor(out, kGround, 1e-12);
  const double f0 =
      1.0 / (2.0 * std::numbers::pi * std::sqrt(1e-9 * 1e-12));
  // Q = (1/R) sqrt(L/C) = 6.32; |H(f0)| = Q.
  const double q = std::sqrt(1e-9 / 1e-12) / 5.0;
  EXPECT_NEAR(std::abs(ac_transfer(nl, f0, out)), q, 0.01 * q);
}

TEST(Ac, InputImpedanceOfSeriesRlcAtResonance) {
  // Series R-L-C chain to ground.
  Netlist nl2;
  const NodeId a = nl2.add_node();
  const NodeId b = nl2.add_node();
  const NodeId c = nl2.add_node();
  nl2.add_resistor(a, b, 7.0);
  nl2.add_inductor(b, c, 2e-9);
  nl2.add_capacitor(c, kGround, 0.5e-12);
  const double f0 =
      1.0 / (2.0 * std::numbers::pi * std::sqrt(2e-9 * 0.5e-12));
  const auto z = ac_input_impedance(nl2, f0, a);
  // At resonance the reactances cancel: Z = R.
  EXPECT_NEAR(z.real(), 7.0, 0.05);
  EXPECT_NEAR(z.imag(), 0.0, 0.2);
}

TEST(Ac, InputImpedanceShortsVoltageSources) {
  // R in series with an ideal source: looking in from the top sees only R.
  Netlist nl;
  const NodeId a = nl.add_node();
  const NodeId b = nl.add_node();
  nl.add_resistor(a, b, 50.0);
  nl.add_vsource(b, kGround, SourceWaveform::dc(5.0));
  const auto z = ac_input_impedance(nl, 1e9, a);
  EXPECT_NEAR(z.real(), 50.0, 1e-6);
  EXPECT_NEAR(z.imag(), 0.0, 1e-6);
}

TEST(Ac, MutualCouplingSeriesAiding) {
  // Two coupled inductors in series: Z = jw (L1 + L2 + 2M) above the gmin
  // floor.
  Netlist nl;
  const NodeId a = nl.add_node();
  const NodeId m = nl.add_node();
  const std::size_t l1 = nl.add_inductor(a, m, 1e-9);
  const std::size_t l2 = nl.add_inductor(m, kGround, 1e-9);
  nl.add_mutual(l1, l2, 0.6e-9);
  const double f = 1e9;
  const auto z = ac_input_impedance(nl, f, a);
  const double expect = 2.0 * std::numbers::pi * f * (1e-9 + 1e-9 + 1.2e-9);
  EXPECT_NEAR(z.imag(), expect, 1e-3 * expect);
}

TEST(Ac, MatchesTransientSteadyStateForDivider) {
  // Resistive divider: AC transfer at any frequency equals the DC ratio.
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId mid = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::dc(1.0));
  nl.add_resistor(in, mid, 3e3);
  nl.add_resistor(mid, kGround, 1e3);
  const auto h = ac_transfer(nl, 1e6, mid);
  EXPECT_NEAR(h.real(), 0.25, 1e-9);
  EXPECT_NEAR(h.imag(), 0.0, 1e-9);
}

TEST(Ac, CrossChecksTransientRingingFrequency) {
  // The transient ringing period of an underdamped RLC must match the AC
  // resonance peak location.
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId mid = nl.add_node();
  const NodeId out = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::ramp(1.0, 1e-12));
  nl.add_resistor(in, mid, 8.0);
  nl.add_inductor(mid, out, 1e-9);
  nl.add_capacitor(out, kGround, 1e-12);

  // AC: find the peak by scanning.
  double best_f = 0.0, best = 0.0;
  for (double f = 2e9; f < 10e9; f *= 1.02) {
    const double mag = std::abs(ac_transfer(nl, f, out));
    if (mag > best) {
      best = mag;
      best_f = f;
    }
  }
  // Transient: measure the first two overshoot peaks' spacing.
  TransientOptions topt;
  topt.t_stop = 3e-9;
  topt.dt = 0.2e-12;
  const Waveform w = simulate(nl, topt).waveform(out);
  std::vector<double> peaks;
  for (std::size_t i = 2; i + 2 < w.size(); ++i) {
    if (w.sample(i) > w.sample(i - 1) && w.sample(i) > w.sample(i + 1) &&
        w.sample(i) > 1.01)
      peaks.push_back(w.time(i));
    if (peaks.size() == 2) break;
  }
  ASSERT_EQ(peaks.size(), 2u);
  const double f_ring = 1.0 / (peaks[1] - peaks[0]);
  EXPECT_NEAR(f_ring, best_f, 0.08 * best_f);
}

TEST(Ac, ErrorPaths) {
  Netlist nl;
  const NodeId a = nl.add_node();
  nl.add_resistor(a, kGround, 1.0);
  EXPECT_THROW(ac_solve(nl, 1e9, 0), std::out_of_range);  // no sources
  nl.add_vsource(a, kGround, SourceWaveform::dc(1.0));
  EXPECT_THROW(ac_solve(nl, 0.0, 0), std::invalid_argument);
  EXPECT_THROW(ac_solve(nl, 1e9, 3), std::out_of_range);
}

}  // namespace
}  // namespace rlcx::ckt
