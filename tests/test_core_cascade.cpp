// Tests for series/parallel loop-inductance cascading (paper Section IV).
#include <gtest/gtest.h>

#include "core/cascade.h"
#include "geom/builders.h"
#include "numeric/units.h"
#include "solver/block_solver.h"

namespace rlcx::core {
namespace {

using units::um;

TEST(Cascade, SeriesAndParallelBasics) {
  EXPECT_DOUBLE_EQ(series_inductance({1e-9, 2e-9, 3e-9}), 6e-9);
  EXPECT_DOUBLE_EQ(series_inductance({}), 0.0);
  EXPECT_NEAR(parallel_inductance({2e-9, 2e-9}), 1e-9, 1e-21);
  EXPECT_NEAR(parallel_inductance({3e-9}), 3e-9, 1e-21);
  EXPECT_THROW(parallel_inductance({}), std::invalid_argument);
  EXPECT_THROW(parallel_inductance({1e-9, 0.0}), std::invalid_argument);
}

TEST(Cascade, TreeEvaluatesFigure6aFormula) {
  // L_ab + (L_bc + L_ce) || (L_bd + L_df).
  const double l_ab = 0.05e-9, l_bc = 0.08e-9, l_ce = 0.12e-9;
  const double l_bd = 0.11e-9, l_df = 0.06e-9;
  CascadeNode root{l_ab, {{l_bc, {{l_ce, {}}}}, {l_bd, {{l_df, {}}}}}};
  const double expect =
      l_ab + parallel_inductance({l_bc + l_ce, l_bd + l_df});
  EXPECT_NEAR(cascade_tree(root), expect, 1e-21);
}

TEST(Cascade, LeafIsItsOwnInductance) {
  EXPECT_DOUBLE_EQ(cascade_tree({0.4e-9, {}}), 0.4e-9);
  EXPECT_THROW(cascade_tree({-1e-9, {}}), std::invalid_argument);
}

TEST(Cascade, DeepChainIsPlainSeries) {
  CascadeNode root{1e-9, {{2e-9, {{3e-9, {{4e-9, {}}}}}}}};
  EXPECT_NEAR(cascade_tree(root), 10e-9, 1e-20);
}

TEST(Cascade, Precondition) {
  EXPECT_TRUE(cascade_precondition(4e-6, 4e-6, 4e-6));
  EXPECT_TRUE(cascade_precondition(4e-6, 8e-6, 5e-6));
  EXPECT_FALSE(cascade_precondition(4e-6, 2e-6, 8e-6));
  EXPECT_FALSE(cascade_precondition(4e-6, 8e-6, 2e-6));
}

TEST(Cascade, SeriesMatchesSolverForCollinearSegments) {
  // Two GSG segments in series, extracted independently, must nearly equal
  // the single segment of the summed length *plus* the superlinear excess:
  // series cascading UNDERestimates the one-piece extraction (paper
  // Section V), so check ordering and closeness.
  const geom::Technology tech = geom::Technology::generic_025um();
  solver::SolveOptions opt;
  opt.frequency = 3.2e9;
  auto loop_of = [&](double len) {
    const geom::Block blk =
        geom::coplanar_waveguide(tech, 6, len, um(4), um(4), um(1));
    return solver::extract_loop(blk, opt).inductance(0, 0);
  };
  const double two_halves = series_inductance({loop_of(um(500)),
                                               loop_of(um(500))});
  const double one_piece = loop_of(um(1000));
  EXPECT_LE(two_halves, one_piece * 1.001);
  // With tight shields the loop L is nearly length-proportional, so the
  // cascading deficit stays small — that is the Section IV claim.
  EXPECT_NEAR(two_halves, one_piece, 0.05 * one_piece);
}

}  // namespace
}  // namespace rlcx::core
