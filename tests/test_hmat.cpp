// Tests for the hierarchical kernel-matrix subsystem (src/hmat) and its
// wiring into the block solver.
//
// The dense blocked-LU path is the bit-exact oracle throughout: the
// KernelMatrix, the H-matrix product and the full GMRES loop solve are all
// gated against it — on a translation-rich regular mesh (where the memo
// classes collapse hard) and on a perturbed, pivot-hostile one (where
// nearly every pair is its own class and ACA's pivoting does real work).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "diag/error.h"
#include "diag/warnings.h"
#include "geom/builders.h"
#include "hmat/aca.h"
#include "hmat/cluster_tree.h"
#include "hmat/gmres.h"
#include "hmat/hmatrix.h"
#include "hmat/kernel_matrix.h"
#include "hmat/stats.h"
#include "numeric/lu.h"
#include "numeric/units.h"
#include "peec/assembly.h"
#include "rt/pool.h"
#include "run/control.h"
#include "run/fault_injection.h"
#include "solver/block_solver.h"

namespace rlcx::hmat {
namespace {

using geom::Block;
using geom::Technology;
using solver::LoopResult;
using solver::SolveOptions;
using solver::SolverKind;
using units::um;

const Technology& tech() {
  static const Technology t = Technology::generic_025um();
  return t;
}

peec::Bar strip_bar(double t_min, double z_min, double width, double thick,
                    double length) {
  peec::Bar b;
  b.axis = peec::Axis::kY;
  b.a_min = 0.0;
  b.length = length;
  b.t_min = t_min;
  b.t_width = width;
  b.z_min = z_min;
  b.z_thick = thick;
  return b;
}

/// Regular strip array: heavy translation reuse (the memo-friendly case).
std::vector<peec::Filament> regular_mesh(std::size_t n) {
  std::vector<peec::Filament> fils;
  for (std::size_t i = 0; i < n; ++i)
    fils.push_back({strip_bar(static_cast<double>(i) * um(3), 0.0, um(1),
                              um(0.5), um(400)),
                    1.0, 0.1});
  return fils;
}

/// Perturbed mesh: irregular widths/positions/z so almost every pair is its
/// own memo class and ACA pivots over genuinely distinct magnitudes.
std::vector<peec::Filament> perturbed_mesh(std::size_t n) {
  std::vector<peec::Filament> fils;
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Deterministic, aperiodic perturbations.
    const double di = static_cast<double>(i);
    const double w = um(1) * (1.0 + 0.31 * std::sin(1.7 * di + 0.3));
    const double gap = um(2) * (1.0 + 0.27 * std::cos(2.3 * di));
    const double z = um(0.2) * std::sin(0.9 * di);
    const double len = um(400) * (1.0 + 0.05 * std::sin(3.1 * di));
    fils.push_back({strip_bar(x, z, w, um(0.5), len), i % 2 ? -1.0 : 1.0,
                    0.05 + 0.01 * di});
    x += w + gap;
  }
  return fils;
}

RealMatrix dense_oracle(const std::vector<peec::Filament>& fils) {
  return peec::partial_inductance_matrix(fils, peec::PartialOptions{});
}

double max_rel_dev(const RealMatrix& a, const RealMatrix& b) {
  double scale = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      scale = std::max(scale, std::abs(a(i, j)));
  double dev = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      dev = std::max(dev, std::abs(a(i, j) - b(i, j)));
  return scale == 0.0 ? dev : dev / scale;
}

// ---------------------------------------------------------------------------
// Cluster tree

TEST(ClusterTree, InvariantsAndCoverage) {
  const std::vector<peec::Filament> fils = perturbed_mesh(100);
  const ClusterTree tree(fils, 8);
  // Permutation is a bijection.
  std::vector<char> seen(fils.size(), 0);
  for (std::size_t p : tree.permutation()) {
    ASSERT_LT(p, fils.size());
    EXPECT_EQ(seen[p], 0);
    seen[p] = 1;
  }
  // Leaves partition [0, n) and respect the size bound.
  std::size_t covered = 0;
  for (std::size_t id : tree.leaves()) {
    const ClusterNode& node = tree.node(id);
    EXPECT_TRUE(node.leaf());
    EXPECT_LE(node.count(), 8u);
    EXPECT_EQ(node.begin, covered);
    covered = node.end;
  }
  EXPECT_EQ(covered, fils.size());
  // Every node's box contains its bars.
  for (const ClusterNode& node : tree.nodes()) {
    for (std::size_t p = node.begin; p < node.end; ++p) {
      const peec::Bar& b = fils[tree.permutation()[p]].bar;
      EXPECT_GE(b.t_min, node.box_min[0] - 1e-18);
      EXPECT_LE(b.t_max(), node.box_max[0] + 1e-18);
      EXPECT_GE(b.z_min, node.box_min[2] - 1e-18);
      EXPECT_LE(b.z_max(), node.box_max[2] + 1e-18);
    }
  }
}

TEST(ClusterTree, AdmissibilityNeedsSeparation) {
  const std::vector<peec::Filament> fils = regular_mesh(64);
  const ClusterTree tree(fils, 8);
  const ClusterNode& root = tree.node(tree.root());
  EXPECT_FALSE(admissible(root, root, 2.0));  // overlapping boxes: dist 0
  // Two far-apart leaves are admissible at a generous eta.
  const ClusterNode& first = tree.node(tree.leaves().front());
  const ClusterNode& last = tree.node(tree.leaves().back());
  EXPECT_TRUE(admissible(first, last, 100.0));
}

// ---------------------------------------------------------------------------
// ACA

TEST(Aca, CompressesSmoothKernelToTolerance) {
  // Far-field block of a smooth displacement kernel: sources at i, targets
  // at 150 + 1.37 j, so the 1/(25 + d^2) peak lies well outside the block
  // and the restriction is numerically low-rank — the shape ACA is built
  // for.  (With the peak inside the block the matrix is near full rank and
  // no algorithm could compress it.)
  const std::size_t m = 60, n = 45;
  auto entry = [](std::size_t i, std::size_t j) {
    const double d =
        static_cast<double>(i) - (150.0 + 1.37 * static_cast<double>(j));
    return 1.0 / (25.0 + d * d);
  };
  AcaOptions opt;
  opt.tol = 1e-10;
  AcaInfo info;
  const LowRank lr = aca_compress(
      m, n,
      [&](std::size_t i, double* out) {
        for (std::size_t j = 0; j < n; ++j) out[j] = entry(i, j);
      },
      [&](std::size_t j, double* out) {
        for (std::size_t i = 0; i < m; ++i) out[i] = entry(i, j);
      },
      opt, &info);
  EXPECT_TRUE(info.converged);
  EXPECT_LT(lr.rank(), std::min(m, n) / 2);
  double fro = 0.0, err = 0.0;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double approx = 0.0;
      for (std::size_t k = 0; k < lr.rank(); ++k)
        approx += lr.u(i, k) * lr.v(k, j);
      const double e = entry(i, j);
      fro += e * e;
      err += (approx - e) * (approx - e);
    }
  EXPECT_LT(std::sqrt(err), 100.0 * opt.tol * std::sqrt(fro));
}

TEST(Aca, ZeroBlockIsRankZero) {
  AcaInfo info;
  const LowRank lr = aca_compress(
      10, 12, [](std::size_t, double* out) { std::fill(out, out + 12, 0.0); },
      [](std::size_t, double* out) { std::fill(out, out + 10, 0.0); },
      AcaOptions{}, &info);
  EXPECT_EQ(lr.rank(), 0u);
  EXPECT_TRUE(info.converged);
}

TEST(Aca, RecompressionTruncatesRedundantRank) {
  // Build an exactly rank-2 factorization padded with linearly dependent
  // directions; recompress must find rank 2.
  const std::size_t m = 20, n = 20, k = 6;
  LowRank lr;
  lr.u = RealMatrix(m, k);
  lr.v = RealMatrix(k, n);
  for (std::size_t i = 0; i < m; ++i) {
    const double a = std::sin(0.3 * static_cast<double>(i));
    const double b = std::cos(0.7 * static_cast<double>(i));
    for (std::size_t c = 0; c < k; ++c)
      lr.u(i, c) = a * static_cast<double>(c + 1) + b * (c % 2 ? 1.0 : -2.0);
  }
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t j = 0; j < n; ++j)
      lr.v(c, j) = std::cos(0.1 * static_cast<double>(c * j + 1));
  RealMatrix before(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t c = 0; c < k; ++c) s += lr.u(i, c) * lr.v(c, j);
      before(i, j) = s;
    }
  recompress(lr, 1e-12);
  EXPECT_EQ(lr.rank(), 2u);
  RealMatrix after(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t c = 0; c < lr.rank(); ++c)
        s += lr.u(i, c) * lr.v(c, j);
      after(i, j) = s;
    }
  EXPECT_LT(max_rel_dev(before, after), 1e-10);
}

// ---------------------------------------------------------------------------
// KernelMatrix vs the dense fill

TEST(KernelMatrix, MatchesDenseFillOnRegularMesh) {
  const std::vector<peec::Filament> fils = regular_mesh(48);
  const RealMatrix lp = dense_oracle(fils);
  const KernelMatrix km(fils, peec::PartialOptions{});
  double dev = 0.0;
  for (std::size_t i = 0; i < fils.size(); ++i)
    for (std::size_t j = 0; j < fils.size(); ++j)
      dev = std::max(dev,
                     std::abs(km.entry(i, j) - lp(i, j)) / std::abs(lp(0, 0)));
  // Canonical-key reconstruction quantizes at 1e-12 of the fill scale.
  EXPECT_LT(dev, 1e-9);
  const peec::FillStats st = km.fill_stats();
  EXPECT_GT(st.hit_rate(), 0.9);  // translation-rich: the memo carries it
}

TEST(KernelMatrix, MatchesDenseFillOnPerturbedMesh) {
  const std::vector<peec::Filament> fils = perturbed_mesh(40);
  const RealMatrix lp = dense_oracle(fils);
  const KernelMatrix km(fils, peec::PartialOptions{});
  double dev = 0.0;
  for (std::size_t i = 0; i < fils.size(); ++i)
    for (std::size_t j = 0; j < fils.size(); ++j)
      dev = std::max(dev,
                     std::abs(km.entry(i, j) - lp(i, j)) / std::abs(lp(0, 0)));
  EXPECT_LT(dev, 1e-9);
}

TEST(KernelMatrix, RowMatchesEntries) {
  const std::vector<peec::Filament> fils = perturbed_mesh(12);
  const KernelMatrix km(fils, peec::PartialOptions{});
  std::vector<std::size_t> cols{0, 3, 7, 11};
  std::vector<double> out(cols.size());
  km.row(5, cols.data(), cols.size(), out.data());
  for (std::size_t k = 0; k < cols.size(); ++k)
    EXPECT_EQ(out[k], km.entry(5, cols[k]));
}

// ---------------------------------------------------------------------------
// H-matrix product

TEST(HMatrix, MatvecMatchesDenseOnRegularMesh) {
  const std::vector<peec::Filament> fils = regular_mesh(96);
  const RealMatrix lp = dense_oracle(fils);
  const KernelMatrix km(fils, peec::PartialOptions{});
  const ClusterTree tree(fils, 16);
  HmatOptions opt;
  const HMatrix h(km, tree, opt);
  EXPECT_GT(h.stats().lowrank_blocks, 0u);
  EXPECT_LT(h.stats().compression(), 1.0);
  std::vector<double> x(fils.size()), y(fils.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(0.37 * static_cast<double>(i) + 0.2);
  h.matvec(x.data(), y.data());
  const std::vector<double> yd = lp * x;
  double scale = 0.0, dev = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    scale = std::max(scale, std::abs(yd[i]));
    dev = std::max(dev, std::abs(y[i] - yd[i]));
  }
  EXPECT_LT(dev / scale, 1e-9);
}

TEST(HMatrix, MatvecMatchesDenseOnPerturbedMesh) {
  const std::vector<peec::Filament> fils = perturbed_mesh(80);
  const RealMatrix lp = dense_oracle(fils);
  const KernelMatrix km(fils, peec::PartialOptions{});
  const ClusterTree tree(fils, 12);
  const HMatrix h(km, tree, HmatOptions{});
  std::vector<double> x(fils.size()), y(fils.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::cos(1.1 * static_cast<double>(i));
  h.matvec(x.data(), y.data());
  const std::vector<double> yd = lp * x;
  double scale = 0.0, dev = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    scale = std::max(scale, std::abs(yd[i]));
    dev = std::max(dev, std::abs(y[i] - yd[i]));
  }
  EXPECT_LT(dev / scale, 1e-9);
}

TEST(HMatrix, AssemblyDeterministicAcrossPoolWidths) {
  const std::vector<peec::Filament> fils = perturbed_mesh(72);
  const KernelMatrix km(fils, peec::PartialOptions{});
  const ClusterTree tree(fils, 12);
  std::vector<double> x(fils.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(0.7 * static_cast<double>(i));
  std::vector<std::vector<double>> results;
  for (int threads : {1, 2, 7}) {
    rt::Pool pool(threads);
    // A fresh kernel per width: the memo fills in a different order each
    // time, which must not matter.
    const KernelMatrix kw(fils, peec::PartialOptions{});
    const HMatrix h(kw, tree, HmatOptions{}, &pool);
    std::vector<double> y(fils.size());
    h.matvec(x.data(), y.data());
    results.push_back(std::move(y));
  }
  for (std::size_t w = 1; w < results.size(); ++w)
    for (std::size_t i = 0; i < results[0].size(); ++i)
      EXPECT_EQ(results[0][i], results[w][i]) << "width case " << w;
}

TEST(HMatrix, CancellationMidAssemblyLeavesNoPartialState) {
  struct InjectorReset {
    ~InjectorReset() { run::FaultInjector::global().clear(); }
  } reset;
  const std::vector<peec::Filament> fils = regular_mesh(96);
  const ClusterTree tree(fils, 8);
  run::CancelToken token;
  run::ScopedRunControl control(run::RunControl{token, run::Deadline{}});
  run::FaultInjector::global().set_schedule("cancel:5");
  {
    const KernelMatrix km(fils, peec::PartialOptions{});
    EXPECT_THROW(HMatrix(km, tree, HmatOptions{}), diag::CancelledError);
  }
  // The checkpoint fired mid-assembly; a fresh build afterwards must be
  // unaffected (no partial writes survive — the cancelled HMatrix never
  // existed).
  run::FaultInjector::global().clear();
  run::CancelToken token2;
  run::ScopedRunControl control2(run::RunControl{token2, run::Deadline{}});
  const KernelMatrix km(fils, peec::PartialOptions{});
  const HMatrix h(km, tree, HmatOptions{});
  const RealMatrix lp = dense_oracle(fils);
  std::vector<double> x(fils.size(), 1.0), y(fils.size());
  h.matvec(x.data(), y.data());
  const std::vector<double> yd = lp * x;
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], yd[i], 1e-9 * std::abs(yd[i]));
}

// ---------------------------------------------------------------------------
// GMRES

TEST(Gmres, SolvesSmallComplexSystemToTolerance) {
  const std::size_t n = 24;
  ComplexMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = Complex(std::sin(0.3 * static_cast<double>(i * n + j)),
                        0.2 * std::cos(0.9 * static_cast<double>(i + 2 * j)));
    a(i, i) += Complex(6.0, 3.0);  // diagonally dominant
  }
  std::vector<Complex> b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = Complex(1.0, -0.5 * static_cast<double>(i % 3));
  std::vector<Complex> x(n);
  GmresOptions opt;
  opt.tol = 1e-12;
  const GmresReport rep = gmres_solve(
      [&](const Complex* in, Complex* out) {
        for (std::size_t i = 0; i < n; ++i) {
          Complex acc = 0.0;
          for (std::size_t j = 0; j < n; ++j) acc += a(i, j) * in[j];
          out[i] = acc;
        }
      },
      n, nullptr, b.data(), x.data(), opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.residual, 1e-12);
  const LuDecomposition<Complex> lu(a);
  const std::vector<Complex> xd = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(x[i] - xd[i]), 0.0, 1e-10 * std::abs(xd[i]) + 1e-14);
}

TEST(Gmres, ReportsNonConvergenceHonestly) {
  // One iteration cannot solve a 8x8 non-normal system.
  const std::size_t n = 8;
  GmresOptions opt;
  opt.restart = 1;
  opt.max_iterations = 1;
  std::vector<Complex> b(n, Complex(1.0, 0.0)), x(n);
  const GmresReport rep = gmres_solve(
      [&](const Complex* in, Complex* out) {
        for (std::size_t i = 0; i < n; ++i)
          out[i] = Complex(0.1, 0.0) * in[i] +
                   (i + 1 < n ? Complex(2.0, 1.0) * in[i + 1] : Complex(0.0));
      },
      n, nullptr, b.data(), x.data(), opt);
  EXPECT_FALSE(rep.converged);
  EXPECT_GT(rep.residual, 0.0);
}

// ---------------------------------------------------------------------------
// Full solver wiring: hmat vs the dense oracle

SolveOptions solver_opts(SolverKind kind) {
  SolveOptions o;
  o.frequency = 1e9;
  o.plane.strips = 31;  // enough conductors/filaments to exercise blocks
  o.solver = kind;
  return o;
}

TEST(SolverWiring, LoopExtractionMatchesDenseOracle) {
  const Block blk =
      geom::microstrip(tech(), 6, um(800), um(2), um(4), um(3));
  const LoopResult dense = extract_loop(blk, solver_opts(SolverKind::kDense));
  const LoopResult hm = extract_loop(blk, solver_opts(SolverKind::kHmat));
  ASSERT_EQ(dense.inductance.rows(), hm.inductance.rows());
  EXPECT_LT(max_rel_dev(dense.inductance, hm.inductance), 1e-8);
  EXPECT_LT(max_rel_dev(dense.resistance, hm.resistance), 1e-8);
}

TEST(SolverWiring, PartialExtractionMatchesDenseOracle) {
  const Block blk = geom::uniform_array(tech(), 6, um(1500), 9, um(2), um(2));
  SolveOptions od = solver_opts(SolverKind::kDense);
  SolveOptions oh = solver_opts(SolverKind::kHmat);
  const solver::PartialResult dense = extract_partial(blk, od);
  const solver::PartialResult hm = extract_partial(blk, oh);
  EXPECT_LT(max_rel_dev(dense.inductance, hm.inductance), 1e-8);
  for (std::size_t i = 0; i < dense.resistance.size(); ++i)
    EXPECT_NEAR(hm.resistance[i], dense.resistance[i],
                1e-8 * std::abs(dense.resistance[i]));
}

TEST(SolverWiring, HmatDeterministicAcrossPoolWidths) {
  const Block blk = geom::microstrip(tech(), 6, um(600), um(2), um(4), um(3));
  const SolveOptions opt = solver_opts(SolverKind::kHmat);
  std::vector<LoopResult> results;
  for (int threads : {1, 2, 7}) {
    rt::Pool::set_global_threads(threads);
    results.push_back(extract_loop(blk, opt));
  }
  rt::Pool::set_global_threads(0);
  for (std::size_t w = 1; w < results.size(); ++w) {
    for (std::size_t i = 0; i < results[0].inductance.rows(); ++i)
      for (std::size_t j = 0; j < results[0].inductance.cols(); ++j) {
        EXPECT_EQ(results[0].inductance(i, j), results[w].inductance(i, j));
        EXPECT_EQ(results[0].resistance(i, j), results[w].resistance(i, j));
      }
  }
}

TEST(SolverWiring, AutoSelectsByCrossover) {
  const Block blk = geom::microstrip(tech(), 6, um(600), um(2), um(4), um(3));
  reset_solve_stats_total();
  SolveOptions o = solver_opts(SolverKind::kAuto);
  o.hmat.auto_crossover = 1;  // force: every solve clears the bar
  (void)extract_loop(blk, o);
  EXPECT_EQ(solve_stats_total().hmat_solves, 1u);
  EXPECT_EQ(solve_stats_total().dense_solves, 0u);
  reset_solve_stats_total();
  o.hmat.auto_crossover = SIZE_MAX;  // unreachable: dense stays in charge
  (void)extract_loop(blk, o);
  EXPECT_EQ(solve_stats_total().hmat_solves, 0u);
  EXPECT_EQ(solve_stats_total().dense_solves, 1u);
}

TEST(SolverWiring, TelemetryRecordsRanksAndIterations) {
  const Block blk = geom::microstrip(tech(), 6, um(600), um(2), um(4), um(3));
  reset_solve_stats_total();
  SolveOptions o = solver_opts(SolverKind::kHmat);
  // Mesh each conductor into several filaments and keep the preconditioner
  // blocks small: the coarse conductor-space correction is exact when each
  // conductor is a single filament, and a whole-matrix Jacobi block is an
  // exact solve — either would leave GMRES nothing to iterate on.
  o.auto_mesh = false;
  o.mesh.nw = 4;
  o.mesh.nt = 2;
  o.hmat.leaf_size = 8;
  o.hmat.precond_block = 8;
  (void)extract_loop(blk, o);
  const SolveStats st = solve_stats_total();
  EXPECT_EQ(st.hmat_solves, 1u);
  EXPECT_GT(st.gmres_iterations, 0u);
  EXPECT_GT(st.full_entries, 0u);
  EXPECT_GT(st.stored_entries, 0u);
  EXPECT_LE(st.gmres_worst_residual, o.hmat.gmres_tol);
  EXPECT_EQ(st.gmres_fallbacks, 0u);
}

TEST(SolverWiring, NonConvergenceEscalatesToDenseWithWarning) {
  const Block blk = geom::microstrip(tech(), 6, um(600), um(2), um(4), um(3));
  SolveOptions o = solver_opts(SolverKind::kHmat);
  // Force genuine non-convergence: tol 0 is unreachable, and small blocks
  // keep the Schwarz preconditioner from being an exact solve (on a
  // problem this small one block would cover the whole matrix and GMRES
  // would finish in a single iteration regardless of budget).
  o.hmat.gmres_tol = 0.0;
  o.hmat.leaf_size = 8;
  o.hmat.precond_block = 8;
  o.hmat.gmres_max_iterations = 3;
  o.hmat.gmres_restart = 3;
  std::vector<std::string> warnings;
  diag::ScopedWarningHandler handler([&](const diag::Warning& w) {
    warnings.push_back(w.message);
  });
  const LoopResult hm = extract_loop(blk, o);
  const LoopResult dense = extract_loop(blk, solver_opts(SolverKind::kDense));
  // The fallback answer IS the dense answer.
  EXPECT_LT(max_rel_dev(dense.inductance, hm.inductance), 1e-14);
  bool named = false;
  for (const std::string& w : warnings)
    if (w.find("hmat solver path") != std::string::npos &&
        w.find("dense solver path") != std::string::npos)
      named = true;
  EXPECT_TRUE(named) << "fallback warning must name both solver paths";
  EXPECT_GT(solve_stats_total().gmres_fallbacks, 0u);
}

TEST(SolverWiring, NonConvergenceThrowsNamedFaultWhenEscalationOff) {
  const Block blk = geom::microstrip(tech(), 6, um(600), um(2), um(4), um(3));
  SolveOptions o = solver_opts(SolverKind::kHmat);
  o.hmat.gmres_tol = 0.0;  // unreachable: see the escalation test above
  o.hmat.leaf_size = 8;
  o.hmat.precond_block = 8;
  o.hmat.gmres_max_iterations = 3;
  o.hmat.gmres_restart = 3;
  o.hmat.escalate_on_nonconvergence = false;
  try {
    (void)extract_loop(blk, o);
    FAIL() << "expected NumericError";
  } catch (const diag::NumericError& e) {
    EXPECT_NE(e.message().find("hmat solver path"), std::string::npos)
        << e.message();
    EXPECT_NE(e.message().find("GMRES"), std::string::npos);
  }
}

TEST(SolverWiring, CancellationMidSolveIsClean) {
  struct InjectorReset {
    ~InjectorReset() { run::FaultInjector::global().clear(); }
  } reset;
  const Block blk = geom::microstrip(tech(), 6, um(600), um(2), um(4), um(3));
  SolveOptions opt = solver_opts(SolverKind::kHmat);
  opt.hmat.leaf_size = 8;  // enough blocks that cancel:3 fires mid-assembly
  {
    run::CancelToken token;
    run::ScopedRunControl control(run::RunControl{token, run::Deadline{}});
    run::FaultInjector::global().set_schedule("cancel:3");
    EXPECT_THROW((void)extract_loop(blk, opt), diag::CancelledError);
    run::FaultInjector::global().clear();
  }
  // Fresh control, schedule cleared: the solve now completes and matches
  // the oracle — nothing stale leaked from the cancelled attempt.
  run::CancelToken token2;
  run::ScopedRunControl control2(run::RunControl{token2, run::Deadline{}});
  const LoopResult hm = extract_loop(blk, opt);
  const LoopResult dense = extract_loop(blk, solver_opts(SolverKind::kDense));
  EXPECT_LT(max_rel_dev(dense.inductance, hm.inductance), 1e-8);
}

}  // namespace
}  // namespace rlcx::hmat
