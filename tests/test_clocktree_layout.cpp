// Tests for the physical H-tree layout and whole-tree cascading validation.
#include <gtest/gtest.h>

#include <set>

#include "clocktree/layout.h"
#include "numeric/units.h"
#include "solver/frequency.h"

namespace rlcx::clocktree {
namespace {

using units::um;

HTreeSpec spec3() {
  HTreeSpec spec = example_cpw_tree();
  return spec;  // 3 levels: 3000/1500/800 um
}

TEST(Layout, SegmentCountAndLevels) {
  const auto layout = htree_layout(spec3());
  // 1 + 2 + 4 segments for 3 levels.
  ASSERT_EQ(layout.size(), 7u);
  std::size_t per_level[3] = {0, 0, 0};
  for (const auto& s : layout) per_level[s.level]++;
  EXPECT_EQ(per_level[0], 1u);
  EXPECT_EQ(per_level[1], 2u);
  EXPECT_EQ(per_level[2], 4u);
}

TEST(Layout, AlternatingDirections) {
  const auto layout = htree_layout(spec3());
  for (const auto& s : layout) {
    EXPECT_EQ(s.axis,
              s.level % 2 == 0 ? peec::Axis::kY : peec::Axis::kX);
  }
}

TEST(Layout, RootStartsAtOriginChildrenAtParentTips) {
  const auto layout = htree_layout(spec3());
  EXPECT_EQ(layout[0].parent, -1);
  EXPECT_DOUBLE_EQ(layout[0].a_start, 0.0);
  EXPECT_NEAR(layout[0].a_end, um(3000), 1e-12);
  for (std::size_t i = 1; i < layout.size(); ++i) {
    const auto& s = layout[i];
    ASSERT_GE(s.parent, 0);
    const auto& p = layout[static_cast<std::size_t>(s.parent)];
    EXPECT_EQ(s.level, p.level + 1);
    // The child's transverse position is the parent's endpoint coordinate
    // along the parent's axis.
    EXPECT_DOUBLE_EQ(s.t_center, p.a_end);
    // And the child starts where the parent's transverse position was.
    EXPECT_DOUBLE_EQ(s.a_start, p.t_center);
  }
}

TEST(Layout, LeafTipsAreDistinctAndSymmetric) {
  const auto layout = htree_layout(spec3());
  std::set<std::pair<double, double>> tips;
  for (const auto& s : layout) {
    if (s.level != 2) continue;
    const double x = s.axis == peec::Axis::kX ? s.a_end : s.t_center;
    const double y = s.axis == peec::Axis::kY ? s.a_end : s.t_center;
    tips.insert({x, y});
    // Mirror tip must also exist eventually (symmetric tree).
  }
  EXPECT_EQ(tips.size(), 4u);
}

TEST(Layout, WirelengthAndBoundingBox) {
  const auto layout = htree_layout(spec3());
  EXPECT_NEAR(total_wirelength(layout),
              um(3000) + 2 * um(1500) + 4 * um(800), 1e-12);
  const auto [bx, by] = bounding_box(layout);
  EXPECT_NEAR(bx, um(1500), 1e-9);          // level-1 arms
  EXPECT_NEAR(by, um(3000) + um(800), 1e-9);  // trunk + level-2 arms
}

TEST(Layout, EmptySpecThrows) {
  HTreeSpec spec = spec3();
  spec.levels.clear();
  EXPECT_THROW(htree_layout(spec), std::invalid_argument);
}

TEST(Layout, TwoLayerFullTreeExtractionUsesPerLevelLayers) {
  // The whole-tree PEEC ground truth must honour per-level layers: moving
  // level 1 to layer 5 changes the result (different z, thickness).
  HTreeSpec spec = example_cpw_tree();
  spec.levels.resize(2);
  spec.levels[0].length = um(600);
  spec.levels[1].length = um(400);

  solver::SolveOptions opt;
  opt.frequency = solver::significant_frequency(100e-12);
  opt.auto_mesh = false;
  opt.mesh.nw = 2;
  opt.mesh.nt = 2;
  const geom::Technology tech = geom::Technology::generic_025um();

  const double same_layer = full_tree_loop_inductance(tech, spec, opt);
  spec.levels[1].layer = 5;
  const double split_layer = full_tree_loop_inductance(tech, spec, opt);
  EXPECT_GT(same_layer, 0.0);
  EXPECT_GT(split_layer, 0.0);
  EXPECT_NE(same_layer, split_layer);
  // Same ballpark: the stack only moves by a micron or two.
  EXPECT_NEAR(split_layer, same_layer, 0.2 * same_layer);
}

TEST(Layout, FullTreeCascadingHoldsAtTreeScale) {
  // The Section IV claim applied to a whole (2-level) physical H-tree:
  // cascaded per-segment loop L vs the full-structure PEEC extraction.
  HTreeSpec spec = example_cpw_tree();
  spec.levels.resize(2);
  spec.levels[0].length = um(800);
  spec.levels[1].length = um(500);

  solver::SolveOptions opt;
  opt.frequency = solver::significant_frequency(100e-12);
  opt.auto_mesh = false;
  opt.mesh.nw = 2;
  opt.mesh.nt = 2;

  const geom::Technology tech = geom::Technology::generic_025um();
  const double full = full_tree_loop_inductance(tech, spec, opt);
  const double casc = cascaded_tree_loop_inductance(tech, spec, opt);
  EXPECT_GT(full, 0.0);
  EXPECT_NEAR(casc, full, 0.05 * full);
}

}  // namespace
}  // namespace rlcx::clocktree
