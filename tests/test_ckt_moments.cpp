// Validation of moment analysis against closed forms and the transient
// engine.
#include <gtest/gtest.h>

#include <cmath>

#include "ckt/moments.h"
#include "ckt/transient.h"

namespace rlcx::ckt {
namespace {

TEST(Moments, SinglePoleExactValues) {
  // RC low-pass: H(s) = 1/(1+sRC): m0 = 1, m1 = -RC, m2 = (RC)^2.
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId out = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::dc(1.0));
  nl.add_resistor(in, out, 1e3);
  nl.add_capacitor(out, kGround, 1e-12);
  const double tau = 1e-9;
  const auto m = transfer_moments(nl, 2);
  EXPECT_NEAR(m[0][static_cast<std::size_t>(out)], 1.0, 1e-8);
  EXPECT_NEAR(m[1][static_cast<std::size_t>(out)], -tau, 1e-6 * tau);
  EXPECT_NEAR(m[2][static_cast<std::size_t>(out)], tau * tau,
              1e-6 * tau * tau);
  EXPECT_NEAR(elmore_delay(nl, out), tau, 1e-6 * tau);
  // D2M is exact for one pole: ln2 * tau.
  EXPECT_NEAR(d2m_delay(nl, out), std::log(2.0) * tau, 1e-6 * tau);
}

TEST(Moments, RlcBranchMomentsIncludeInductance) {
  // Series R-L into C: H(s) = 1/(1 + sRC + s^2 LC):
  // m1 = -RC, m2 = (RC)^2 - LC.
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId mid = nl.add_node();
  const NodeId out = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::dc(1.0));
  nl.add_resistor(in, mid, 100.0);
  nl.add_inductor(mid, out, 5e-9);
  nl.add_capacitor(out, kGround, 1e-12);
  const double rc = 100.0 * 1e-12;
  const double lc = 5e-9 * 1e-12;
  const auto m = transfer_moments(nl, 2);
  EXPECT_NEAR(m[1][static_cast<std::size_t>(out)], -rc, 1e-6 * rc);
  EXPECT_NEAR(m[2][static_cast<std::size_t>(out)], rc * rc - lc,
              1e-6 * std::abs(rc * rc - lc));
}

TEST(Moments, ElmoreOfRcLadderMatchesHandFormula) {
  // Two-section ladder: Elmore(out) = R1*(C1+C2) + R2*C2.
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId a = nl.add_node();
  const NodeId b = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::dc(1.0));
  nl.add_resistor(in, a, 50.0);
  nl.add_capacitor(a, kGround, 2e-13);
  nl.add_resistor(a, b, 80.0);
  nl.add_capacitor(b, kGround, 3e-13);
  const double expect = 50.0 * (2e-13 + 3e-13) + 80.0 * 3e-13;
  EXPECT_NEAR(elmore_delay(nl, b), expect, 1e-6 * expect);
  // Elmore at the intermediate node counts downstream capacitance too.
  const double expect_a = 50.0 * (2e-13 + 3e-13);
  EXPECT_NEAR(elmore_delay(nl, a), expect_a, 1e-6 * expect_a);
}

TEST(Moments, D2mTracksTransientOnRcLadder) {
  // A 6-stage RC ladder: D2M must land within ~10% of the simulated 50%
  // delay, while Elmore overestimates.
  Netlist nl;
  const NodeId in = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::ramp(1.0, 1e-13));
  NodeId prev = in;
  for (int k = 0; k < 6; ++k) {
    const NodeId next = nl.add_node();
    nl.add_resistor(prev, next, 100.0);
    nl.add_capacitor(next, kGround, 2e-13);
    prev = next;
  }
  TransientOptions topt;
  topt.t_stop = 5e-9;
  topt.dt = 0.2e-12;
  const auto t50 =
      simulate(nl, topt).waveform(prev).first_rise_through(0.5);
  ASSERT_TRUE(t50.has_value());
  const double simulated = *t50;
  EXPECT_NEAR(d2m_delay(nl, prev), simulated, 0.10 * simulated);
  EXPECT_GT(elmore_delay(nl, prev), simulated);  // classic overestimate
}

TEST(Moments, FloatingNodeRejected) {
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId orphan = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::dc(1.0));
  nl.add_resistor(in, kGround, 1e3);
  nl.add_capacitor(orphan, kGround, 1e-15);  // only capacitively connected
  EXPECT_THROW(elmore_delay(nl, orphan), std::runtime_error);
}

TEST(Moments, ArgumentValidation) {
  Netlist nl;
  const NodeId in = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::dc(1.0));
  nl.add_resistor(in, kGround, 1e3);
  EXPECT_THROW(transfer_moments(nl, -1), std::invalid_argument);
  EXPECT_THROW(transfer_moments(nl, 2, 5), std::out_of_range);
}

}  // namespace
}  // namespace rlcx::ckt
