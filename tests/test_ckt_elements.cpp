// Tests for sources, netlist bookkeeping and waveform measurements.
#include <gtest/gtest.h>

#include <cmath>

#include "ckt/netlist.h"
#include "ckt/sources.h"
#include "ckt/waveform.h"

namespace rlcx::ckt {
namespace {

TEST(Sources, RampShape) {
  const auto r = SourceWaveform::ramp(1.8, 100e-12);
  EXPECT_DOUBLE_EQ(r.eval(-1e-12), 0.0);
  EXPECT_DOUBLE_EQ(r.eval(0.0), 0.0);
  EXPECT_NEAR(r.eval(50e-12), 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(r.eval(100e-12), 1.8);
  EXPECT_DOUBLE_EQ(r.eval(1e-9), 1.8);
}

TEST(Sources, DelayedRamp) {
  const auto r = SourceWaveform::ramp(1.0, 10e-12, 5e-12);
  EXPECT_DOUBLE_EQ(r.eval(5e-12), 0.0);
  EXPECT_NEAR(r.eval(10e-12), 0.5, 1e-12);
}

TEST(Sources, ClockPeriodicity) {
  const auto c = SourceWaveform::clock(1.0, 1e-9, 50e-12);
  EXPECT_DOUBLE_EQ(c.period(), 1e-9);
  EXPECT_NEAR(c.eval(0.3e-9), 1.0, 1e-12);   // high phase
  EXPECT_NEAR(c.eval(0.8e-9), 0.0, 1e-12);   // low phase
  EXPECT_NEAR(c.eval(1.3e-9), 1.0, 1e-12);   // next cycle
  EXPECT_NEAR(c.eval(25e-12), 0.5, 1e-12);   // mid-rise
}

TEST(Sources, PwlValidation) {
  EXPECT_THROW(SourceWaveform::pwl({}), std::invalid_argument);
  EXPECT_THROW(SourceWaveform::pwl({{1.0, 0.0}, {0.5, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(SourceWaveform::ramp(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(SourceWaveform::clock(1.0, 1e-9, 0.6e-9),
               std::invalid_argument);
}

TEST(Sources, DcIsConstant) {
  const auto d = SourceWaveform::dc(2.5);
  EXPECT_DOUBLE_EQ(d.eval(0.0), 2.5);
  EXPECT_DOUBLE_EQ(d.eval(1.0), 2.5);
}

TEST(NetlistApi, NodesAndNames) {
  Netlist nl;
  const NodeId a = nl.add_node("in");
  const NodeId b = nl.add_node();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(nl.node("in"), a);
  EXPECT_EQ(nl.node_name(kGround), "gnd");
  EXPECT_THROW(nl.node("nope"), std::out_of_range);
  EXPECT_THROW(nl.node_name(99), std::out_of_range);
}

TEST(NetlistApi, ElementValidation) {
  Netlist nl;
  const NodeId a = nl.add_node();
  EXPECT_THROW(nl.add_resistor(a, a, 1.0), std::invalid_argument);
  EXPECT_THROW(nl.add_resistor(a, kGround, 0.0), std::invalid_argument);
  EXPECT_THROW(nl.add_capacitor(a, kGround, -1e-15), std::invalid_argument);
  EXPECT_THROW(nl.add_inductor(a, kGround, 0.0), std::invalid_argument);
  EXPECT_THROW(nl.add_resistor(a, 17, 1.0), std::out_of_range);
}

TEST(NetlistApi, MutualValidation) {
  Netlist nl;
  const NodeId a = nl.add_node();
  const NodeId b = nl.add_node();
  const std::size_t l1 = nl.add_inductor(a, kGround, 1e-9);
  const std::size_t l2 = nl.add_inductor(b, kGround, 4e-9);
  EXPECT_THROW(nl.add_mutual(l1, l1, 1e-10), std::invalid_argument);
  EXPECT_THROW(nl.add_mutual(l1, 9, 1e-10), std::out_of_range);
  // |M| must stay below sqrt(L1 L2) = 2e-9.
  EXPECT_THROW(nl.add_mutual(l1, l2, 2e-9), std::invalid_argument);
  nl.add_mutual(l1, l2, 1.9e-9);
  EXPECT_EQ(nl.mutuals().size(), 1u);
  nl.add_coupling(l1, l2, 0.5);
  EXPECT_NEAR(nl.mutuals()[1].henries, 1e-9, 1e-18);
  EXPECT_THROW(nl.add_coupling(l1, l2, 1.1), std::invalid_argument);
}

TEST(WaveformApi, InterpolationAndCrossing) {
  Waveform w(1e-12, {0.0, 0.2, 0.6, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(w.value_at(0.5e-12), 0.1);
  EXPECT_DOUBLE_EQ(w.value_at(99e-12), 1.0);
  const auto t = w.first_rise_through(0.5);
  ASSERT_TRUE(t.has_value());
  // Crosses 0.5 between samples 1 (0.2) and 2 (0.6): t = 1 + 0.75 ps.
  EXPECT_NEAR(*t, 1.75e-12, 1e-18);
  EXPECT_FALSE(w.first_rise_through(2.0).has_value());
}

TEST(WaveformApi, OvershootUndershoot) {
  Waveform w(1e-12, {0.0, -0.1, 0.5, 1.3, 1.1, 1.0});
  EXPECT_NEAR(w.overshoot(), 0.3, 1e-12);
  EXPECT_NEAR(w.undershoot(), 0.1, 1e-12);
  Waveform mono(1e-12, {0.0, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(mono.overshoot(), 0.0);
  EXPECT_DOUBLE_EQ(mono.undershoot(), 0.0);
}

TEST(WaveformApi, DelayAndSkew) {
  Waveform ref(1e-12, {0.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  Waveform s1(1e-12, {0.0, 0.0, 0.0, 1.0, 1.0, 1.0});
  Waveform s2(1e-12, {0.0, 0.0, 0.0, 0.0, 1.0, 1.0});
  const double d1 = delay_50(ref, s1, 1.0);
  const double d2 = delay_50(ref, s2, 1.0);
  EXPECT_NEAR(d2 - d1, 1e-12, 1e-18);
  EXPECT_NEAR(skew_50(ref, {s1, s2}, 1.0), 1e-12, 1e-18);
  EXPECT_THROW(skew_50(ref, {}, 1.0), std::invalid_argument);
  Waveform flat(1e-12, {0.0, 0.0});
  EXPECT_THROW(delay_50(ref, flat, 1.0), std::runtime_error);
  EXPECT_THROW(delay_50(ref, s1, 0.0), std::invalid_argument);
}

TEST(WaveformApi, Validation) {
  EXPECT_THROW(Waveform(0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(Waveform(1e-12, {}), std::invalid_argument);
}

}  // namespace
}  // namespace rlcx::ckt
