// Validation of the transient engine against closed-form circuit theory.
#include <gtest/gtest.h>

#include <cmath>

#include "ckt/transient.h"

namespace rlcx::ckt {
namespace {

TEST(Transient, RcChargingMatchesExponential) {
  // 1 kohm / 1 pF low-pass driven by a fast step: v(t) = 1 - exp(-t/tau).
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  nl.add_vsource(in, kGround, SourceWaveform::ramp(1.0, 1e-12));
  nl.add_resistor(in, out, 1e3);
  nl.add_capacitor(out, kGround, 1e-12);

  TransientOptions opt;
  opt.t_stop = 5e-9;
  opt.dt = 1e-12;
  const TransientResult res = simulate(nl, opt);
  const Waveform v = res.waveform(out);

  const double tau = 1e-9;
  for (double t : {0.5e-9, 1e-9, 2e-9, 4e-9}) {
    const double expect = 1.0 - std::exp(-(t - 0.5e-12) / tau);
    EXPECT_NEAR(v.value_at(t), expect, 3e-3) << "t=" << t;
  }
  // 50% delay of a single-pole RC is ln(2) tau.
  const auto t50 = v.first_rise_through(0.5);
  ASSERT_TRUE(t50.has_value());
  EXPECT_NEAR(*t50, std::log(2.0) * tau, 0.02 * tau);
}

TEST(Transient, RlDividerMatchesExponential) {
  // Step -> L -> node -> R -> gnd: v_node = V exp(-t R/L) across R... the
  // current rises as (1 - e^{-tR/L}), so v_R = V (1 - e^{-tR/L}).
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId mid = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::ramp(1.0, 1e-12));
  nl.add_inductor(in, mid, 1e-9);
  nl.add_resistor(mid, kGround, 10.0);

  TransientOptions opt;
  opt.t_stop = 1e-9;
  opt.dt = 0.2e-12;
  const Waveform v = simulate(nl, opt).waveform(mid);
  const double tau = 1e-9 / 10.0;  // L/R = 100 ps
  for (double t : {50e-12, 100e-12, 300e-12}) {
    const double expect = 1.0 - std::exp(-t / tau);
    EXPECT_NEAR(v.value_at(t), expect, 0.01) << "t=" << t;
  }
}

TEST(Transient, SeriesRlcOvershootMatchesSecondOrderTheory) {
  // R = 10, L = 1 nH, C = 1 pF: zeta = (R/2) sqrt(C/L) = 0.158;
  // overshoot = exp(-pi zeta / sqrt(1 - zeta^2)) = 0.605.
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId a = nl.add_node();
  const NodeId out = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::ramp(1.0, 1e-12));
  nl.add_resistor(in, a, 10.0);
  nl.add_inductor(a, out, 1e-9);
  nl.add_capacitor(out, kGround, 1e-12);

  TransientOptions opt;
  opt.t_stop = 4e-9;
  opt.dt = 0.5e-12;
  const Waveform v = simulate(nl, opt).waveform(out);
  const double zeta = 0.5 * 10.0 * std::sqrt(1e-12 / 1e-9);
  const double expect =
      std::exp(-std::numbers::pi * zeta / std::sqrt(1.0 - zeta * zeta));
  EXPECT_NEAR(v.overshoot(), expect, 0.03);
  // Ringing frequency ~ 1/(2 pi sqrt(LC)) = 5.03 GHz: the first peak sits
  // near half a period after the 50% point.
  EXPECT_NEAR(v.final(), 1.0, 1e-3);
}

TEST(Transient, CoupledInductorsMatchSeriesEquivalent) {
  // Two series inductors coupled aiding: Leff = L1 + L2 + 2M.  The step
  // response through R must match a single inductor of that value.
  auto run = [](bool coupled) {
    Netlist nl;
    const NodeId in = nl.add_node();
    const NodeId out = nl.add_node();
    if (coupled) {
      const NodeId mid = nl.add_node();
      const std::size_t l1 = nl.add_inductor(in, mid, 1e-9);
      const std::size_t l2 = nl.add_inductor(mid, out, 2e-9);
      nl.add_mutual(l1, l2, 0.5e-9);
    } else {
      nl.add_inductor(in, out, 1e-9 + 2e-9 + 2 * 0.5e-9);
    }
    nl.add_resistor(out, kGround, 20.0);
    nl.add_vsource(in, kGround, SourceWaveform::ramp(1.0, 1e-12));
    TransientOptions opt;
    opt.t_stop = 1.5e-9;
    opt.dt = 0.5e-12;
    return simulate(nl, opt).waveform(out);
  };
  const Waveform a = run(true);
  const Waveform b = run(false);
  for (double t : {0.1e-9, 0.3e-9, 0.6e-9, 1.2e-9})
    EXPECT_NEAR(a.value_at(t), b.value_at(t), 1e-6) << "t=" << t;
}

TEST(Transient, OpposingCouplingReducesEffectiveInductance) {
  auto rise_time_to_90 = [](double m) {
    Netlist nl;
    const NodeId in = nl.add_node();
    const NodeId mid = nl.add_node();
    const NodeId out = nl.add_node();
    const std::size_t l1 = nl.add_inductor(in, mid, 1e-9);
    const std::size_t l2 = nl.add_inductor(mid, out, 1e-9);
    if (m != 0.0) nl.add_mutual(l1, l2, m);
    nl.add_resistor(out, kGround, 20.0);
    nl.add_vsource(in, kGround, SourceWaveform::ramp(1.0, 1e-12));
    TransientOptions opt;
    opt.t_stop = 2e-9;
    opt.dt = 0.5e-12;
    const auto t = simulate(nl, opt).waveform(out).first_rise_through(0.9);
    return t.value();
  };
  // Aiding coupling -> slower rise; opposing -> faster.
  EXPECT_GT(rise_time_to_90(+0.5e-9), rise_time_to_90(0.0));
  EXPECT_LT(rise_time_to_90(-0.5e-9), rise_time_to_90(0.0));
}

TEST(Transient, DcOperatingPointRespected) {
  // A DC source across a divider must start at the divided value, not 0.
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId mid = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::dc(2.0));
  nl.add_resistor(in, mid, 1e3);
  nl.add_resistor(mid, kGround, 1e3);
  nl.add_capacitor(mid, kGround, 1e-12);
  TransientOptions opt;
  opt.t_stop = 1e-9;
  opt.dt = 1e-12;
  const TransientResult res = simulate(nl, opt);
  EXPECT_NEAR(res.voltage(mid, 0), 1.0, 1e-6);
  EXPECT_NEAR(res.waveform(mid).value_at(1e-9), 1.0, 1e-6);
}

TEST(Transient, CapacitiveDividerFloatingNodeStable) {
  // A node reachable only through capacitors must not blow up (gmin holds
  // it) and should follow the capacitive divider.
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId mid = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::ramp(1.0, 10e-12));
  nl.add_capacitor(in, mid, 2e-15);
  nl.add_capacitor(mid, kGround, 2e-15);
  TransientOptions opt;
  opt.t_stop = 1e-10;
  opt.dt = 0.5e-12;
  const Waveform v = simulate(nl, opt).waveform(mid);
  EXPECT_NEAR(v.value_at(5e-11), 0.5, 0.02);
}

TEST(Transient, GroundedWaveformIsZero) {
  Netlist nl;
  const NodeId in = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::dc(1.0));
  nl.add_resistor(in, kGround, 1e3);
  TransientOptions opt;
  opt.t_stop = 1e-10;
  opt.dt = 1e-12;
  const TransientResult res = simulate(nl, opt);
  const Waveform g = res.waveform(kGround);
  EXPECT_DOUBLE_EQ(g.max(), 0.0);
  EXPECT_DOUBLE_EQ(g.min(), 0.0);
}

TEST(Transient, OptionValidation) {
  Netlist nl;
  const NodeId in = nl.add_node();
  nl.add_resistor(in, kGround, 1.0);
  TransientOptions opt;
  opt.t_stop = 1e-9;
  opt.dt = 0.0;
  EXPECT_THROW(simulate(nl, opt), std::invalid_argument);
  opt.dt = 1e-9;
  opt.t_stop = 0.5e-9;
  EXPECT_THROW(simulate(nl, opt), std::invalid_argument);
}

TEST(Transient, ResultAccessorsAndBounds) {
  Netlist nl;
  const NodeId in = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::dc(1.0));
  nl.add_resistor(in, kGround, 1e3);
  TransientOptions opt;
  opt.t_stop = 1e-11;
  opt.dt = 1e-12;
  const TransientResult res = simulate(nl, opt);
  EXPECT_EQ(res.steps(), 11u);
  EXPECT_DOUBLE_EQ(res.dt(), 1e-12);
  EXPECT_NEAR(res.voltage(in, 5), 1.0, 1e-9);
  EXPECT_THROW(res.voltage(99, 0), std::out_of_range);
  EXPECT_THROW(res.voltage(in, 999), std::out_of_range);
}

TEST(Transient, EnergyConservationLcTank) {
  // Lossless LC tank excited through a tiny resistor: after the source
  // settles the oscillation amplitude must not grow (trapezoidal is
  // A-stable and non-dissipative).
  Netlist nl;
  const NodeId in = nl.add_node();
  const NodeId out = nl.add_node();
  nl.add_vsource(in, kGround, SourceWaveform::ramp(1.0, 5e-12));
  nl.add_resistor(in, out, 1.0);
  nl.add_inductor(out, kGround, 1e-9);
  nl.add_capacitor(out, kGround, 1e-12);
  TransientOptions opt;
  opt.t_stop = 20e-9;
  opt.dt = 1e-12;
  const Waveform v = simulate(nl, opt).waveform(out);
  // Peak in the second half must not exceed the global peak (no growth).
  double late_peak = 0.0;
  for (std::size_t i = v.size() / 2; i < v.size(); ++i)
    late_peak = std::max(late_peak, std::abs(v.sample(i)));
  EXPECT_LE(late_peak, std::abs(v.max()) + 1e-9);
}

}  // namespace
}  // namespace rlcx::ckt
