// Validation of the partial-inductance kernels.
//
// These tests pin the Hoer-Love volume kernel against independent references:
// the exact thin-filament closed form, Ruehli's published approximation, and
// analytic properties (symmetry, positivity, superlinear length scaling,
// exactness of the series chunk decomposition).
#include <gtest/gtest.h>

#include <cmath>

#include "diag/error.h"
#include "numeric/units.h"
#include "peec/assembly.h"
#include "peec/partial_inductance.h"

namespace rlcx::peec {
namespace {

using units::um;

Bar make_bar(double w, double t, double l, double x = 0.0, double z = 0.0,
             double y0 = 0.0, Axis axis = Axis::kY) {
  Bar b;
  b.axis = axis;
  b.a_min = y0;
  b.length = l;
  b.t_min = x;
  b.t_width = w;
  b.z_min = z;
  b.z_thick = t;
  return b;
}

TEST(FilamentMutual, MatchesAsymptoticFormula) {
  // For l >> d:  M ~ (mu0 l / 2pi)(ln(2l/d) - 1 + d/l).
  const double l = 1e-3, d = 10e-6;
  const double expected =
      2e-7 * l * (std::log(2.0 * l / d) - 1.0 + d / l);
  EXPECT_NEAR(filament_mutual(l, l, 0.0, d), expected, 2e-4 * expected);
}

TEST(FilamentMutual, SymmetricUnderExchange) {
  const double m1 = filament_mutual(1e-3, 0.5e-3, 0.2e-3, 5e-6);
  // Swap roles: filament 2 seen from filament 1's frame.
  const double m2 = filament_mutual(0.5e-3, 1e-3, -0.2e-3, 5e-6);
  EXPECT_NEAR(m1, m2, 1e-12 * std::abs(m1));
}

TEST(FilamentMutual, DecaysWithDistance) {
  double prev = filament_mutual(1e-3, 1e-3, 0.0, 1e-6);
  for (double d = 2e-6; d < 1e-4; d *= 2.0) {
    const double m = filament_mutual(1e-3, 1e-3, 0.0, d);
    EXPECT_LT(m, prev);
    EXPECT_GT(m, 0.0);
    prev = m;
  }
}

TEST(FilamentMutual, CollinearGapPositiveAndDecaying) {
  const double l = 100e-6;
  double prev = filament_mutual(l, l, l + 1e-6, 0.0);
  EXPECT_GT(prev, 0.0);
  for (double gap = 2e-6; gap < 50e-6; gap *= 2.0) {
    const double m = filament_mutual(l, l, l + gap, 0.0);
    EXPECT_LT(m, prev);
    EXPECT_GT(m, 0.0);
    prev = m;
  }
}

TEST(FilamentMutual, CollinearOverlapThrows) {
  EXPECT_THROW(filament_mutual(1e-3, 1e-3, 0.5e-3, 0.0),
               std::invalid_argument);
}

TEST(FilamentMutual, CollinearMatchesSmallRadiusLimit) {
  // The r -> 0 collinear formula must be the limit of the general one.
  const double l = 100e-6, s = 120e-6;
  const double exact0 = filament_mutual(l, l, s, 0.0);
  const double tiny = filament_mutual(l, l, s, 1e-12);
  EXPECT_NEAR(exact0, tiny, 1e-4 * std::abs(exact0));
}

TEST(HoerLove, MatchesFilamentWhenFar) {
  // Thin bars far apart must agree with the filament formula.
  const double l = 1e-3, w = 1e-6, t = 1e-6, d = 50e-6;
  const double hl = hoer_love_mutual(w, t, l, w, t, l, d, 0.0, 0.0);
  const double fil = filament_mutual(l, l, 0.0, d);
  EXPECT_NEAR(hl, fil, 5e-4 * fil);
}

TEST(HoerLove, MatchesFilamentWithAxialStagger) {
  const double l1 = 800e-6, l2 = 300e-6, w = 1e-6, t = 1e-6;
  const double E = 40e-6, P = 20e-6, l3 = 200e-6;
  const double hl = hoer_love_mutual(w, t, l1, w, t, l2, E, P, l3);
  const double fil = filament_mutual(l1, l2, l3, std::hypot(E, P));
  EXPECT_NEAR(hl, fil, 2e-3 * fil);
}

TEST(HoerLove, SymmetricUnderConductorExchange) {
  const double m1 =
      hoer_love_mutual(10e-6, 2e-6, 1e-3, 5e-6, 2e-6, 0.8e-3, 12e-6, 1e-6,
                       0.1e-3);
  const double m2 =
      hoer_love_mutual(5e-6, 2e-6, 0.8e-3, 10e-6, 2e-6, 1e-3, -12e-6, -1e-6,
                       -0.1e-3);
  // The 64-term bracket cancels heavily; ~1e-7 relative agreement is what
  // double precision leaves for these aspect ratios.
  EXPECT_NEAR(m1, m2, 1e-6 * std::abs(m1));
}

TEST(HoerLove, SelfMatchesRuehliApproximation) {
  // Coincident bars give the self partial inductance; Ruehli's formula is
  // good to ~1% for l >> w+t.
  const double w = 1e-6, t = 1e-6, l = 100e-6;
  const double self = hoer_love_mutual(w, t, l, w, t, l, 0.0, 0.0, 0.0);
  const double ruehli = ruehli_self(l, w, t);
  EXPECT_NEAR(self, ruehli, 0.02 * ruehli);
}

TEST(HoerLove, RejectsDegenerateDimensions) {
  EXPECT_THROW(hoer_love_mutual(0.0, 1e-6, 1e-3, 1e-6, 1e-6, 1e-3, 0, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(hoer_love_mutual(1e-6, 1e-6, -1e-3, 1e-6, 1e-6, 1e-3, 0, 0, 0),
               std::invalid_argument);
}

TEST(SelfPartial, MatchesRuehliAcrossSizes) {
  // The paper's clock wires: 10 um wide, 2 um thick, millimetres long.
  for (double l_um : {200.0, 1000.0, 6000.0}) {
    const Bar b = make_bar(um(10), um(2), um(l_um));
    const double self = self_partial(b);
    const double approx = ruehli_self(um(l_um), um(10), um(2));
    EXPECT_NEAR(self, approx, 0.03 * approx) << "l = " << l_um << " um";
  }
}

TEST(SelfPartial, ChunkingIsExactDecomposition) {
  // Two very different chunk sizes must agree: the series decomposition is
  // exact, so any difference is kernel round-off.  (A single huge-aspect
  // chunk is deliberately not the reference — taming that cancellation is
  // why chunking exists.)
  const Bar b = make_bar(um(2), um(2), um(2000));
  PartialOptions coarse;
  coarse.max_aspect = 64.0;
  PartialOptions fine;
  fine.max_aspect = 32.0;
  // The decomposition is exact analytically; numerically the far-pair
  // filament handoff leaves ~1e-5 relative — far below the ~1% accuracy of
  // the extraction itself.
  const double a = self_partial(b, coarse);
  const double c = self_partial(b, fine);
  EXPECT_NEAR(a, c, 1e-5 * a);
}

TEST(SelfPartial, SuperlinearInLength) {
  // Paper Section V: doubling a segment from 1000 um to 2000 um raises self
  // inductance by clearly more than 2x (around 2.2x for clock geometry).
  const Bar b1 = make_bar(um(10), um(2), um(1000));
  const Bar b2 = make_bar(um(10), um(2), um(2000));
  const double ratio = self_partial(b2) / self_partial(b1);
  EXPECT_GT(ratio, 2.05);
  EXPECT_LT(ratio, 2.45);
}

TEST(MutualPartial, OrthogonalBarsDoNotCouple) {
  const Bar a = make_bar(um(2), um(2), um(500), 0.0, 0.0, 0.0, Axis::kY);
  const Bar b = make_bar(um(2), um(2), um(500), 0.0, um(4), 0.0, Axis::kX);
  EXPECT_DOUBLE_EQ(mutual_partial(a, b), 0.0);
}

TEST(MutualPartial, SymmetricAndPositiveForAdjacentTraces) {
  // Figure 1 geometry: 10 um signal, 5 um ground, 1 um apart.
  const Bar sig = make_bar(um(10), um(2), um(1000), 0.0);
  const Bar gnd = make_bar(um(5), um(2), um(1000), um(11));
  const double m1 = mutual_partial(sig, gnd);
  const double m2 = mutual_partial(gnd, sig);
  EXPECT_GT(m1, 0.0);
  EXPECT_NEAR(m1, m2, 1e-7 * m1);
  // Mutual below self for both.
  EXPECT_LT(m1, self_partial(sig));
  EXPECT_LT(m1, self_partial(gnd));
}

TEST(MutualPartial, SuperlinearInLengthToo) {
  const Bar a1 = make_bar(um(10), um(2), um(1000), 0.0);
  const Bar b1 = make_bar(um(10), um(2), um(1000), um(12));
  const Bar a2 = make_bar(um(10), um(2), um(2000), 0.0);
  const Bar b2 = make_bar(um(10), um(2), um(2000), um(12));
  const double ratio = mutual_partial(a2, b2) / mutual_partial(a1, b1);
  EXPECT_GT(ratio, 2.05);
  EXPECT_LT(ratio, 2.6);
}

TEST(MutualPartial, FarPathAgreesWithExactKernel) {
  // Across the far-factor boundary the filament fast path and the volume
  // kernel must agree smoothly.
  const Bar a = make_bar(um(2), um(2), um(500), 0.0);
  const Bar b = make_bar(um(2), um(2), um(500), um(100));
  PartialOptions exact_only;
  exact_only.far_factor = 1e12;  // force the volume kernel
  PartialOptions fil_only;
  fil_only.far_factor = 0.0;  // force the filament path
  const double me = mutual_partial(a, b, exact_only);
  const double mf = mutual_partial(a, b, fil_only);
  EXPECT_NEAR(me, mf, 2e-3 * me);
}

TEST(Assembly, BarResistanceMatchesSheetFormula) {
  const Bar b = make_bar(um(10), um(2), um(6000));
  // R = rho l / (w t): 2e-8 * 6e-3 / 2e-11 = 6 ohms.
  EXPECT_NEAR(bar_resistance(b, 2e-8), 6.0, 1e-9);
}

TEST(Assembly, MatrixSymmetricWithSignFolding) {
  std::vector<Filament> fils;
  fils.push_back({make_bar(um(2), um(2), um(300), 0.0), +1.0, 1.0});
  fils.push_back({make_bar(um(2), um(2), um(300), um(6)), -1.0, 1.0});
  fils.push_back({make_bar(um(2), um(2), um(300), um(12)), +1.0, 1.0});
  const RealMatrix lp = partial_inductance_matrix(fils);
  EXPECT_EQ(lp.rows(), 3u);
  // Antiparallel neighbour: negative mutual entry.
  EXPECT_LT(lp(0, 1), 0.0);
  EXPECT_GT(lp(0, 2), 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(lp(i, i), 0.0);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(lp(i, j), lp(j, i));
  }
}

TEST(Assembly, MatrixIsPositiveDefiniteOnTestVectors) {
  // Physical Lp matrices store magnetic energy: x^T Lp x > 0.
  std::vector<Filament> fils;
  for (int i = 0; i < 6; ++i)
    fils.push_back({make_bar(um(1), um(1), um(400), um(2.5 * i)), 1.0, 1.0});
  const RealMatrix lp = partial_inductance_matrix(fils);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x(6);
    for (int i = 0; i < 6; ++i)
      x[static_cast<std::size_t>(i)] =
          std::sin(static_cast<double>(trial * 7 + i * 3 + 1));
    double energy = 0.0;
    for (std::size_t i = 0; i < 6; ++i)
      for (std::size_t j = 0; j < 6; ++j) energy += x[i] * lp(i, j) * x[j];
    EXPECT_GT(energy, 0.0) << "trial " << trial;
  }
}

// Parameterised property sweep: Hoer-Love self inductance stays within a few
// per cent of Ruehli's approximation over the whole clock-geometry range.
struct SelfCase {
  double w_um, t_um, l_um;
};

class SelfSweep : public ::testing::TestWithParam<SelfCase> {};

TEST_P(SelfSweep, CloseToRuehli) {
  const SelfCase c = GetParam();
  const double self = self_partial(make_bar(um(c.w_um), um(c.t_um),
                                            um(c.l_um)));
  const double approx = ruehli_self(um(c.l_um), um(c.w_um), um(c.t_um));
  // Ruehli's fit itself is only ~1-2% for moderate aspect; allow 5%.
  EXPECT_NEAR(self, approx, 0.05 * approx);
}

INSTANTIATE_TEST_SUITE_P(
    ClockGeometries, SelfSweep,
    ::testing::Values(SelfCase{1.0, 1.0, 100.0}, SelfCase{2.0, 1.0, 500.0},
                      SelfCase{5.0, 2.0, 1000.0}, SelfCase{10.0, 2.0, 2000.0},
                      SelfCase{10.0, 2.0, 6000.0}, SelfCase{1.2, 2.0, 600.0},
                      SelfCase{20.0, 2.0, 4000.0}));

// Coincident or interpenetrating bars describe impossible metal: the
// mutual kernel rejects them as a `geometry` error with the overlap
// extents, instead of integrating a singular kernel into NaN/garbage.
TEST(MutualPartial, CoincidentBarsAreAGeometryError) {
  const Bar b = make_bar(um(2), um(1), um(500));
  try {
    mutual_partial(b, b);
    FAIL() << "coincident bars must be rejected";
  } catch (const rlcx::diag::GeometryError& e) {
    EXPECT_NE(std::string(e.what()).find("overlap in volume"),
              std::string::npos)
        << e.what();
  }
}

TEST(MutualPartial, PartiallyOverlappingBarsAreAGeometryError) {
  const Bar a = make_bar(um(2), um(1), um(500));
  // Shifted by half a width: still sharing metal.
  const Bar b = make_bar(um(2), um(1), um(500), um(1));
  EXPECT_THROW(mutual_partial(a, b), rlcx::diag::GeometryError);
  // Exactly touching side faces are legal (chunked self-inductance relies
  // on this): a zero-overlap neighbour must still integrate cleanly.
  const Bar c = make_bar(um(2), um(1), um(500), um(2));
  EXPECT_GT(mutual_partial(a, c), 0.0);
}

}  // namespace
}  // namespace rlcx::peec
