# Empty dependencies file for bench_ladder_ablation.
# This may be replaced when dependencies are built.
