file(REMOVE_RECURSE
  "../bench/bench_ladder_ablation"
  "../bench/bench_ladder_ablation.pdb"
  "CMakeFiles/bench_ladder_ablation.dir/bench_ladder_ablation.cpp.o"
  "CMakeFiles/bench_ladder_ablation.dir/bench_ladder_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ladder_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
