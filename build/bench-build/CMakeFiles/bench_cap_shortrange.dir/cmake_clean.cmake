file(REMOVE_RECURSE
  "../bench/bench_cap_shortrange"
  "../bench/bench_cap_shortrange.pdb"
  "CMakeFiles/bench_cap_shortrange.dir/bench_cap_shortrange.cpp.o"
  "CMakeFiles/bench_cap_shortrange.dir/bench_cap_shortrange.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cap_shortrange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
