# Empty compiler generated dependencies file for bench_cap_shortrange.
# This may be replaced when dependencies are built.
