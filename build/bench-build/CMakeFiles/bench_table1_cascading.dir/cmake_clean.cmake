file(REMOVE_RECURSE
  "../bench/bench_table1_cascading"
  "../bench/bench_table1_cascading.pdb"
  "CMakeFiles/bench_table1_cascading.dir/bench_table1_cascading.cpp.o"
  "CMakeFiles/bench_table1_cascading.dir/bench_table1_cascading.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cascading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
