file(REMOVE_RECURSE
  "../bench/bench_superlinear"
  "../bench/bench_superlinear.pdb"
  "CMakeFiles/bench_superlinear.dir/bench_superlinear.cpp.o"
  "CMakeFiles/bench_superlinear.dir/bench_superlinear.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_superlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
