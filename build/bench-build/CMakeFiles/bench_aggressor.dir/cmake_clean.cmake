file(REMOVE_RECURSE
  "../bench/bench_aggressor"
  "../bench/bench_aggressor.pdb"
  "CMakeFiles/bench_aggressor.dir/bench_aggressor.cpp.o"
  "CMakeFiles/bench_aggressor.dir/bench_aggressor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
