# Empty dependencies file for bench_aggressor.
# This may be replaced when dependencies are built.
