file(REMOVE_RECURSE
  "../bench/bench_moments"
  "../bench/bench_moments.pdb"
  "CMakeFiles/bench_moments.dir/bench_moments.cpp.o"
  "CMakeFiles/bench_moments.dir/bench_moments.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
