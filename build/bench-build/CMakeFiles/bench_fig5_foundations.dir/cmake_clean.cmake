file(REMOVE_RECURSE
  "../bench/bench_fig5_foundations"
  "../bench/bench_fig5_foundations.pdb"
  "CMakeFiles/bench_fig5_foundations.dir/bench_fig5_foundations.cpp.o"
  "CMakeFiles/bench_fig5_foundations.dir/bench_fig5_foundations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_foundations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
