# Empty compiler generated dependencies file for bench_fig5_foundations.
# This may be replaced when dependencies are built.
