# Empty dependencies file for bench_table_accuracy.
# This may be replaced when dependencies are built.
