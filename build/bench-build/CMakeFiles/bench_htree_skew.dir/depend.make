# Empty dependencies file for bench_htree_skew.
# This may be replaced when dependencies are built.
