file(REMOVE_RECURSE
  "../bench/bench_htree_skew"
  "../bench/bench_htree_skew.pdb"
  "CMakeFiles/bench_htree_skew.dir/bench_htree_skew.cpp.o"
  "CMakeFiles/bench_htree_skew.dir/bench_htree_skew.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_htree_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
