file(REMOVE_RECURSE
  "../bench/bench_ntrace"
  "../bench/bench_ntrace.pdb"
  "CMakeFiles/bench_ntrace.dir/bench_ntrace.cpp.o"
  "CMakeFiles/bench_ntrace.dir/bench_ntrace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ntrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
