# Empty compiler generated dependencies file for bench_ntrace.
# This may be replaced when dependencies are built.
