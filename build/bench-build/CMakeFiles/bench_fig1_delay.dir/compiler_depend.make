# Empty compiler generated dependencies file for bench_fig1_delay.
# This may be replaced when dependencies are built.
