file(REMOVE_RECURSE
  "../bench/bench_frequency_sweep"
  "../bench/bench_frequency_sweep.pdb"
  "CMakeFiles/bench_frequency_sweep.dir/bench_frequency_sweep.cpp.o"
  "CMakeFiles/bench_frequency_sweep.dir/bench_frequency_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frequency_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
