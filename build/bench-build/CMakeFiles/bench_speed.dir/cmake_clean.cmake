file(REMOVE_RECURSE
  "../bench/bench_speed"
  "../bench/bench_speed.pdb"
  "CMakeFiles/bench_speed.dir/bench_speed.cpp.o"
  "CMakeFiles/bench_speed.dir/bench_speed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
