# Empty compiler generated dependencies file for bench_process_variation.
# This may be replaced when dependencies are built.
