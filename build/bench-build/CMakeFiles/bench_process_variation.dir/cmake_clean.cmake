file(REMOVE_RECURSE
  "../bench/bench_process_variation"
  "../bench/bench_process_variation.pdb"
  "CMakeFiles/bench_process_variation.dir/bench_process_variation.cpp.o"
  "CMakeFiles/bench_process_variation.dir/bench_process_variation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_process_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
