file(REMOVE_RECURSE
  "librlcx_core.a"
)
