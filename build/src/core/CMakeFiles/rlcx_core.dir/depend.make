# Empty dependencies file for rlcx_core.
# This may be replaced when dependencies are built.
