
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cascade.cpp" "src/core/CMakeFiles/rlcx_core.dir/cascade.cpp.o" "gcc" "src/core/CMakeFiles/rlcx_core.dir/cascade.cpp.o.d"
  "/root/repo/src/core/inductance_model.cpp" "src/core/CMakeFiles/rlcx_core.dir/inductance_model.cpp.o" "gcc" "src/core/CMakeFiles/rlcx_core.dir/inductance_model.cpp.o.d"
  "/root/repo/src/core/netlist_builder.cpp" "src/core/CMakeFiles/rlcx_core.dir/netlist_builder.cpp.o" "gcc" "src/core/CMakeFiles/rlcx_core.dir/netlist_builder.cpp.o.d"
  "/root/repo/src/core/rlc_extractor.cpp" "src/core/CMakeFiles/rlcx_core.dir/rlc_extractor.cpp.o" "gcc" "src/core/CMakeFiles/rlcx_core.dir/rlc_extractor.cpp.o.d"
  "/root/repo/src/core/screening.cpp" "src/core/CMakeFiles/rlcx_core.dir/screening.cpp.o" "gcc" "src/core/CMakeFiles/rlcx_core.dir/screening.cpp.o.d"
  "/root/repo/src/core/table.cpp" "src/core/CMakeFiles/rlcx_core.dir/table.cpp.o" "gcc" "src/core/CMakeFiles/rlcx_core.dir/table.cpp.o.d"
  "/root/repo/src/core/table_builder.cpp" "src/core/CMakeFiles/rlcx_core.dir/table_builder.cpp.o" "gcc" "src/core/CMakeFiles/rlcx_core.dir/table_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/rlcx_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/rlcx_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/ckt/CMakeFiles/rlcx_ckt.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rlcx_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/rlcx_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/peec/CMakeFiles/rlcx_peec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
