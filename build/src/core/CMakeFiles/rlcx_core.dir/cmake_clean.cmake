file(REMOVE_RECURSE
  "CMakeFiles/rlcx_core.dir/cascade.cpp.o"
  "CMakeFiles/rlcx_core.dir/cascade.cpp.o.d"
  "CMakeFiles/rlcx_core.dir/inductance_model.cpp.o"
  "CMakeFiles/rlcx_core.dir/inductance_model.cpp.o.d"
  "CMakeFiles/rlcx_core.dir/netlist_builder.cpp.o"
  "CMakeFiles/rlcx_core.dir/netlist_builder.cpp.o.d"
  "CMakeFiles/rlcx_core.dir/rlc_extractor.cpp.o"
  "CMakeFiles/rlcx_core.dir/rlc_extractor.cpp.o.d"
  "CMakeFiles/rlcx_core.dir/screening.cpp.o"
  "CMakeFiles/rlcx_core.dir/screening.cpp.o.d"
  "CMakeFiles/rlcx_core.dir/table.cpp.o"
  "CMakeFiles/rlcx_core.dir/table.cpp.o.d"
  "CMakeFiles/rlcx_core.dir/table_builder.cpp.o"
  "CMakeFiles/rlcx_core.dir/table_builder.cpp.o.d"
  "librlcx_core.a"
  "librlcx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlcx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
