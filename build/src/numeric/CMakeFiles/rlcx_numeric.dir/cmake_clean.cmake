file(REMOVE_RECURSE
  "CMakeFiles/rlcx_numeric.dir/elliptic.cpp.o"
  "CMakeFiles/rlcx_numeric.dir/elliptic.cpp.o.d"
  "CMakeFiles/rlcx_numeric.dir/spline.cpp.o"
  "CMakeFiles/rlcx_numeric.dir/spline.cpp.o.d"
  "CMakeFiles/rlcx_numeric.dir/stats.cpp.o"
  "CMakeFiles/rlcx_numeric.dir/stats.cpp.o.d"
  "librlcx_numeric.a"
  "librlcx_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlcx_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
