# Empty dependencies file for rlcx_numeric.
# This may be replaced when dependencies are built.
