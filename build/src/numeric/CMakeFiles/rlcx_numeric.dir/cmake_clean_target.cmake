file(REMOVE_RECURSE
  "librlcx_numeric.a"
)
