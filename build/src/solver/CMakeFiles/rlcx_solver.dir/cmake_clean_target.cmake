file(REMOVE_RECURSE
  "librlcx_solver.a"
)
