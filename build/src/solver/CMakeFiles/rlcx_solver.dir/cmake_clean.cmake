file(REMOVE_RECURSE
  "CMakeFiles/rlcx_solver.dir/block_solver.cpp.o"
  "CMakeFiles/rlcx_solver.dir/block_solver.cpp.o.d"
  "CMakeFiles/rlcx_solver.dir/frequency.cpp.o"
  "CMakeFiles/rlcx_solver.dir/frequency.cpp.o.d"
  "CMakeFiles/rlcx_solver.dir/network.cpp.o"
  "CMakeFiles/rlcx_solver.dir/network.cpp.o.d"
  "librlcx_solver.a"
  "librlcx_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlcx_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
