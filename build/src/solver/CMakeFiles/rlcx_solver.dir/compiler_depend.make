# Empty compiler generated dependencies file for rlcx_solver.
# This may be replaced when dependencies are built.
