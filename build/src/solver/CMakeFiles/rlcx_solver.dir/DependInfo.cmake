
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/block_solver.cpp" "src/solver/CMakeFiles/rlcx_solver.dir/block_solver.cpp.o" "gcc" "src/solver/CMakeFiles/rlcx_solver.dir/block_solver.cpp.o.d"
  "/root/repo/src/solver/frequency.cpp" "src/solver/CMakeFiles/rlcx_solver.dir/frequency.cpp.o" "gcc" "src/solver/CMakeFiles/rlcx_solver.dir/frequency.cpp.o.d"
  "/root/repo/src/solver/network.cpp" "src/solver/CMakeFiles/rlcx_solver.dir/network.cpp.o" "gcc" "src/solver/CMakeFiles/rlcx_solver.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/peec/CMakeFiles/rlcx_peec.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rlcx_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/rlcx_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
