file(REMOVE_RECURSE
  "librlcx_geom.a"
)
