file(REMOVE_RECURSE
  "CMakeFiles/rlcx_geom.dir/block.cpp.o"
  "CMakeFiles/rlcx_geom.dir/block.cpp.o.d"
  "CMakeFiles/rlcx_geom.dir/builders.cpp.o"
  "CMakeFiles/rlcx_geom.dir/builders.cpp.o.d"
  "CMakeFiles/rlcx_geom.dir/technology.cpp.o"
  "CMakeFiles/rlcx_geom.dir/technology.cpp.o.d"
  "librlcx_geom.a"
  "librlcx_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlcx_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
