# Empty compiler generated dependencies file for rlcx_geom.
# This may be replaced when dependencies are built.
