
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peec/assembly.cpp" "src/peec/CMakeFiles/rlcx_peec.dir/assembly.cpp.o" "gcc" "src/peec/CMakeFiles/rlcx_peec.dir/assembly.cpp.o.d"
  "/root/repo/src/peec/mesh.cpp" "src/peec/CMakeFiles/rlcx_peec.dir/mesh.cpp.o" "gcc" "src/peec/CMakeFiles/rlcx_peec.dir/mesh.cpp.o.d"
  "/root/repo/src/peec/partial_inductance.cpp" "src/peec/CMakeFiles/rlcx_peec.dir/partial_inductance.cpp.o" "gcc" "src/peec/CMakeFiles/rlcx_peec.dir/partial_inductance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/rlcx_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rlcx_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
