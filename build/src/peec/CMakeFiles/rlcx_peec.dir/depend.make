# Empty dependencies file for rlcx_peec.
# This may be replaced when dependencies are built.
