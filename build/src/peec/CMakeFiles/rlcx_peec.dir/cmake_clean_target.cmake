file(REMOVE_RECURSE
  "librlcx_peec.a"
)
