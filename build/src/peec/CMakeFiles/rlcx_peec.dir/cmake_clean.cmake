file(REMOVE_RECURSE
  "CMakeFiles/rlcx_peec.dir/assembly.cpp.o"
  "CMakeFiles/rlcx_peec.dir/assembly.cpp.o.d"
  "CMakeFiles/rlcx_peec.dir/mesh.cpp.o"
  "CMakeFiles/rlcx_peec.dir/mesh.cpp.o.d"
  "CMakeFiles/rlcx_peec.dir/partial_inductance.cpp.o"
  "CMakeFiles/rlcx_peec.dir/partial_inductance.cpp.o.d"
  "librlcx_peec.a"
  "librlcx_peec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlcx_peec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
