# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("numeric")
subdirs("geom")
subdirs("peec")
subdirs("solver")
subdirs("cap")
subdirs("ckt")
subdirs("core")
subdirs("clocktree")
subdirs("cli")
