# Empty compiler generated dependencies file for rlcx.
# This may be replaced when dependencies are built.
