file(REMOVE_RECURSE
  "CMakeFiles/rlcx.dir/main.cpp.o"
  "CMakeFiles/rlcx.dir/main.cpp.o.d"
  "rlcx"
  "rlcx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlcx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
