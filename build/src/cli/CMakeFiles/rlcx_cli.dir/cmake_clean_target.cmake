file(REMOVE_RECURSE
  "librlcx_cli.a"
)
