# Empty compiler generated dependencies file for rlcx_cli.
# This may be replaced when dependencies are built.
