file(REMOVE_RECURSE
  "CMakeFiles/rlcx_cli.dir/cli.cpp.o"
  "CMakeFiles/rlcx_cli.dir/cli.cpp.o.d"
  "librlcx_cli.a"
  "librlcx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlcx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
