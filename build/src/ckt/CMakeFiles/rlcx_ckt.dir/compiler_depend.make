# Empty compiler generated dependencies file for rlcx_ckt.
# This may be replaced when dependencies are built.
