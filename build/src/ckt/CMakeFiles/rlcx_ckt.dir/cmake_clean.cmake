file(REMOVE_RECURSE
  "CMakeFiles/rlcx_ckt.dir/ac.cpp.o"
  "CMakeFiles/rlcx_ckt.dir/ac.cpp.o.d"
  "CMakeFiles/rlcx_ckt.dir/moments.cpp.o"
  "CMakeFiles/rlcx_ckt.dir/moments.cpp.o.d"
  "CMakeFiles/rlcx_ckt.dir/netlist.cpp.o"
  "CMakeFiles/rlcx_ckt.dir/netlist.cpp.o.d"
  "CMakeFiles/rlcx_ckt.dir/sources.cpp.o"
  "CMakeFiles/rlcx_ckt.dir/sources.cpp.o.d"
  "CMakeFiles/rlcx_ckt.dir/spice_export.cpp.o"
  "CMakeFiles/rlcx_ckt.dir/spice_export.cpp.o.d"
  "CMakeFiles/rlcx_ckt.dir/transient.cpp.o"
  "CMakeFiles/rlcx_ckt.dir/transient.cpp.o.d"
  "CMakeFiles/rlcx_ckt.dir/waveform.cpp.o"
  "CMakeFiles/rlcx_ckt.dir/waveform.cpp.o.d"
  "librlcx_ckt.a"
  "librlcx_ckt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlcx_ckt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
