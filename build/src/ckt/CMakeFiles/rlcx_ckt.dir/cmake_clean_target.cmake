file(REMOVE_RECURSE
  "librlcx_ckt.a"
)
