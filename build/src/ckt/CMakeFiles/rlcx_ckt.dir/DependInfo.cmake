
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckt/ac.cpp" "src/ckt/CMakeFiles/rlcx_ckt.dir/ac.cpp.o" "gcc" "src/ckt/CMakeFiles/rlcx_ckt.dir/ac.cpp.o.d"
  "/root/repo/src/ckt/moments.cpp" "src/ckt/CMakeFiles/rlcx_ckt.dir/moments.cpp.o" "gcc" "src/ckt/CMakeFiles/rlcx_ckt.dir/moments.cpp.o.d"
  "/root/repo/src/ckt/netlist.cpp" "src/ckt/CMakeFiles/rlcx_ckt.dir/netlist.cpp.o" "gcc" "src/ckt/CMakeFiles/rlcx_ckt.dir/netlist.cpp.o.d"
  "/root/repo/src/ckt/sources.cpp" "src/ckt/CMakeFiles/rlcx_ckt.dir/sources.cpp.o" "gcc" "src/ckt/CMakeFiles/rlcx_ckt.dir/sources.cpp.o.d"
  "/root/repo/src/ckt/spice_export.cpp" "src/ckt/CMakeFiles/rlcx_ckt.dir/spice_export.cpp.o" "gcc" "src/ckt/CMakeFiles/rlcx_ckt.dir/spice_export.cpp.o.d"
  "/root/repo/src/ckt/transient.cpp" "src/ckt/CMakeFiles/rlcx_ckt.dir/transient.cpp.o" "gcc" "src/ckt/CMakeFiles/rlcx_ckt.dir/transient.cpp.o.d"
  "/root/repo/src/ckt/waveform.cpp" "src/ckt/CMakeFiles/rlcx_ckt.dir/waveform.cpp.o" "gcc" "src/ckt/CMakeFiles/rlcx_ckt.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/rlcx_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
