
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cap/cap_tables.cpp" "src/cap/CMakeFiles/rlcx_cap.dir/cap_tables.cpp.o" "gcc" "src/cap/CMakeFiles/rlcx_cap.dir/cap_tables.cpp.o.d"
  "/root/repo/src/cap/extractor.cpp" "src/cap/CMakeFiles/rlcx_cap.dir/extractor.cpp.o" "gcc" "src/cap/CMakeFiles/rlcx_cap.dir/extractor.cpp.o.d"
  "/root/repo/src/cap/fd2d.cpp" "src/cap/CMakeFiles/rlcx_cap.dir/fd2d.cpp.o" "gcc" "src/cap/CMakeFiles/rlcx_cap.dir/fd2d.cpp.o.d"
  "/root/repo/src/cap/models.cpp" "src/cap/CMakeFiles/rlcx_cap.dir/models.cpp.o" "gcc" "src/cap/CMakeFiles/rlcx_cap.dir/models.cpp.o.d"
  "/root/repo/src/cap/statistical.cpp" "src/cap/CMakeFiles/rlcx_cap.dir/statistical.cpp.o" "gcc" "src/cap/CMakeFiles/rlcx_cap.dir/statistical.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/rlcx_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/rlcx_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
