# Empty dependencies file for rlcx_cap.
# This may be replaced when dependencies are built.
