file(REMOVE_RECURSE
  "librlcx_cap.a"
)
