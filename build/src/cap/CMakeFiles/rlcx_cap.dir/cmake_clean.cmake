file(REMOVE_RECURSE
  "CMakeFiles/rlcx_cap.dir/cap_tables.cpp.o"
  "CMakeFiles/rlcx_cap.dir/cap_tables.cpp.o.d"
  "CMakeFiles/rlcx_cap.dir/extractor.cpp.o"
  "CMakeFiles/rlcx_cap.dir/extractor.cpp.o.d"
  "CMakeFiles/rlcx_cap.dir/fd2d.cpp.o"
  "CMakeFiles/rlcx_cap.dir/fd2d.cpp.o.d"
  "CMakeFiles/rlcx_cap.dir/models.cpp.o"
  "CMakeFiles/rlcx_cap.dir/models.cpp.o.d"
  "CMakeFiles/rlcx_cap.dir/statistical.cpp.o"
  "CMakeFiles/rlcx_cap.dir/statistical.cpp.o.d"
  "librlcx_cap.a"
  "librlcx_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlcx_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
