file(REMOVE_RECURSE
  "librlcx_clocktree.a"
)
