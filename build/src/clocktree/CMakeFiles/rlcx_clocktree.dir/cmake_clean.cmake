file(REMOVE_RECURSE
  "CMakeFiles/rlcx_clocktree.dir/htree.cpp.o"
  "CMakeFiles/rlcx_clocktree.dir/htree.cpp.o.d"
  "CMakeFiles/rlcx_clocktree.dir/layout.cpp.o"
  "CMakeFiles/rlcx_clocktree.dir/layout.cpp.o.d"
  "CMakeFiles/rlcx_clocktree.dir/skew.cpp.o"
  "CMakeFiles/rlcx_clocktree.dir/skew.cpp.o.d"
  "CMakeFiles/rlcx_clocktree.dir/tree_netlist.cpp.o"
  "CMakeFiles/rlcx_clocktree.dir/tree_netlist.cpp.o.d"
  "librlcx_clocktree.a"
  "librlcx_clocktree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlcx_clocktree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
