# Empty dependencies file for rlcx_clocktree.
# This may be replaced when dependencies are built.
