
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clocktree/htree.cpp" "src/clocktree/CMakeFiles/rlcx_clocktree.dir/htree.cpp.o" "gcc" "src/clocktree/CMakeFiles/rlcx_clocktree.dir/htree.cpp.o.d"
  "/root/repo/src/clocktree/layout.cpp" "src/clocktree/CMakeFiles/rlcx_clocktree.dir/layout.cpp.o" "gcc" "src/clocktree/CMakeFiles/rlcx_clocktree.dir/layout.cpp.o.d"
  "/root/repo/src/clocktree/skew.cpp" "src/clocktree/CMakeFiles/rlcx_clocktree.dir/skew.cpp.o" "gcc" "src/clocktree/CMakeFiles/rlcx_clocktree.dir/skew.cpp.o.d"
  "/root/repo/src/clocktree/tree_netlist.cpp" "src/clocktree/CMakeFiles/rlcx_clocktree.dir/tree_netlist.cpp.o" "gcc" "src/clocktree/CMakeFiles/rlcx_clocktree.dir/tree_netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rlcx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/rlcx_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/peec/CMakeFiles/rlcx_peec.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/rlcx_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/ckt/CMakeFiles/rlcx_ckt.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rlcx_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/rlcx_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
