file(REMOVE_RECURSE
  "CMakeFiles/test_solver_network.dir/test_solver_network.cpp.o"
  "CMakeFiles/test_solver_network.dir/test_solver_network.cpp.o.d"
  "test_solver_network"
  "test_solver_network.pdb"
  "test_solver_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
