# Empty dependencies file for test_solver_network.
# This may be replaced when dependencies are built.
