file(REMOVE_RECURSE
  "CMakeFiles/test_numeric_spline.dir/test_numeric_spline.cpp.o"
  "CMakeFiles/test_numeric_spline.dir/test_numeric_spline.cpp.o.d"
  "test_numeric_spline"
  "test_numeric_spline.pdb"
  "test_numeric_spline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numeric_spline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
