# Empty compiler generated dependencies file for test_numeric_spline.
# This may be replaced when dependencies are built.
