file(REMOVE_RECURSE
  "CMakeFiles/test_core_loopmode.dir/test_core_loopmode.cpp.o"
  "CMakeFiles/test_core_loopmode.dir/test_core_loopmode.cpp.o.d"
  "test_core_loopmode"
  "test_core_loopmode.pdb"
  "test_core_loopmode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_loopmode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
