# Empty compiler generated dependencies file for test_core_loopmode.
# This may be replaced when dependencies are built.
