file(REMOVE_RECURSE
  "CMakeFiles/test_peec_partial.dir/test_peec_partial.cpp.o"
  "CMakeFiles/test_peec_partial.dir/test_peec_partial.cpp.o.d"
  "test_peec_partial"
  "test_peec_partial.pdb"
  "test_peec_partial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peec_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
