# Empty dependencies file for test_peec_partial.
# This may be replaced when dependencies are built.
