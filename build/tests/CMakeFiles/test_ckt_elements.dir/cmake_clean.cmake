file(REMOVE_RECURSE
  "CMakeFiles/test_ckt_elements.dir/test_ckt_elements.cpp.o"
  "CMakeFiles/test_ckt_elements.dir/test_ckt_elements.cpp.o.d"
  "test_ckt_elements"
  "test_ckt_elements.pdb"
  "test_ckt_elements[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckt_elements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
