# Empty compiler generated dependencies file for test_ckt_elements.
# This may be replaced when dependencies are built.
