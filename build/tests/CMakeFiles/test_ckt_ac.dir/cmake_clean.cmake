file(REMOVE_RECURSE
  "CMakeFiles/test_ckt_ac.dir/test_ckt_ac.cpp.o"
  "CMakeFiles/test_ckt_ac.dir/test_ckt_ac.cpp.o.d"
  "test_ckt_ac"
  "test_ckt_ac.pdb"
  "test_ckt_ac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckt_ac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
