file(REMOVE_RECURSE
  "CMakeFiles/test_cap_fd.dir/test_cap_fd.cpp.o"
  "CMakeFiles/test_cap_fd.dir/test_cap_fd.cpp.o.d"
  "test_cap_fd"
  "test_cap_fd.pdb"
  "test_cap_fd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cap_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
