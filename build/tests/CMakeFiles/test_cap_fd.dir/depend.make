# Empty dependencies file for test_cap_fd.
# This may be replaced when dependencies are built.
