file(REMOVE_RECURSE
  "CMakeFiles/test_core_screening.dir/test_core_screening.cpp.o"
  "CMakeFiles/test_core_screening.dir/test_core_screening.cpp.o.d"
  "test_core_screening"
  "test_core_screening.pdb"
  "test_core_screening[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
