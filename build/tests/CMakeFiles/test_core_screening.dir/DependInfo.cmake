
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_screening.cpp" "tests/CMakeFiles/test_core_screening.dir/test_core_screening.cpp.o" "gcc" "tests/CMakeFiles/test_core_screening.dir/test_core_screening.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rlcx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/rlcx_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/peec/CMakeFiles/rlcx_peec.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/rlcx_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/ckt/CMakeFiles/rlcx_ckt.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rlcx_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/rlcx_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
