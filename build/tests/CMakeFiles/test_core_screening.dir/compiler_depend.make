# Empty compiler generated dependencies file for test_core_screening.
# This may be replaced when dependencies are built.
