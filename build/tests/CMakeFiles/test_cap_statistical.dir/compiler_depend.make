# Empty compiler generated dependencies file for test_cap_statistical.
# This may be replaced when dependencies are built.
