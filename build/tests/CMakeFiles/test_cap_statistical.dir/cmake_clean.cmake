file(REMOVE_RECURSE
  "CMakeFiles/test_cap_statistical.dir/test_cap_statistical.cpp.o"
  "CMakeFiles/test_cap_statistical.dir/test_cap_statistical.cpp.o.d"
  "test_cap_statistical"
  "test_cap_statistical.pdb"
  "test_cap_statistical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cap_statistical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
