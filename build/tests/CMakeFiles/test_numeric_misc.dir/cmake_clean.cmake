file(REMOVE_RECURSE
  "CMakeFiles/test_numeric_misc.dir/test_numeric_misc.cpp.o"
  "CMakeFiles/test_numeric_misc.dir/test_numeric_misc.cpp.o.d"
  "test_numeric_misc"
  "test_numeric_misc.pdb"
  "test_numeric_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numeric_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
