# Empty dependencies file for test_numeric_misc.
# This may be replaced when dependencies are built.
