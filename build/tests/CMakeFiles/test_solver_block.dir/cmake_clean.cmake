file(REMOVE_RECURSE
  "CMakeFiles/test_solver_block.dir/test_solver_block.cpp.o"
  "CMakeFiles/test_solver_block.dir/test_solver_block.cpp.o.d"
  "test_solver_block"
  "test_solver_block.pdb"
  "test_solver_block[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
