# Empty compiler generated dependencies file for test_solver_block.
# This may be replaced when dependencies are built.
