# Empty dependencies file for test_clocktree_layout.
# This may be replaced when dependencies are built.
