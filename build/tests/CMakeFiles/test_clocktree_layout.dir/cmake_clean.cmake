file(REMOVE_RECURSE
  "CMakeFiles/test_clocktree_layout.dir/test_clocktree_layout.cpp.o"
  "CMakeFiles/test_clocktree_layout.dir/test_clocktree_layout.cpp.o.d"
  "test_clocktree_layout"
  "test_clocktree_layout.pdb"
  "test_clocktree_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clocktree_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
