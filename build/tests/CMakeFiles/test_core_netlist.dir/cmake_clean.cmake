file(REMOVE_RECURSE
  "CMakeFiles/test_core_netlist.dir/test_core_netlist.cpp.o"
  "CMakeFiles/test_core_netlist.dir/test_core_netlist.cpp.o.d"
  "test_core_netlist"
  "test_core_netlist.pdb"
  "test_core_netlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
