file(REMOVE_RECURSE
  "CMakeFiles/test_cap_tables.dir/test_cap_tables.cpp.o"
  "CMakeFiles/test_cap_tables.dir/test_cap_tables.cpp.o.d"
  "test_cap_tables"
  "test_cap_tables.pdb"
  "test_cap_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cap_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
