# Empty dependencies file for test_cap_tables.
# This may be replaced when dependencies are built.
