# Empty compiler generated dependencies file for test_core_cascade.
# This may be replaced when dependencies are built.
