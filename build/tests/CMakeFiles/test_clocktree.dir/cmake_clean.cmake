file(REMOVE_RECURSE
  "CMakeFiles/test_clocktree.dir/test_clocktree.cpp.o"
  "CMakeFiles/test_clocktree.dir/test_clocktree.cpp.o.d"
  "test_clocktree"
  "test_clocktree.pdb"
  "test_clocktree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clocktree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
