# Empty dependencies file for test_peec_mesh.
# This may be replaced when dependencies are built.
