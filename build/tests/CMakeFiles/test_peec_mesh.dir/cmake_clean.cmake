file(REMOVE_RECURSE
  "CMakeFiles/test_peec_mesh.dir/test_peec_mesh.cpp.o"
  "CMakeFiles/test_peec_mesh.dir/test_peec_mesh.cpp.o.d"
  "test_peec_mesh"
  "test_peec_mesh.pdb"
  "test_peec_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peec_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
