# Empty compiler generated dependencies file for test_ckt_export.
# This may be replaced when dependencies are built.
