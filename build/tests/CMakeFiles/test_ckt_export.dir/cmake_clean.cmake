file(REMOVE_RECURSE
  "CMakeFiles/test_ckt_export.dir/test_ckt_export.cpp.o"
  "CMakeFiles/test_ckt_export.dir/test_ckt_export.cpp.o.d"
  "test_ckt_export"
  "test_ckt_export.pdb"
  "test_ckt_export[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckt_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
