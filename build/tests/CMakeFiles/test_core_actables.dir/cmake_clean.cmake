file(REMOVE_RECURSE
  "CMakeFiles/test_core_actables.dir/test_core_actables.cpp.o"
  "CMakeFiles/test_core_actables.dir/test_core_actables.cpp.o.d"
  "test_core_actables"
  "test_core_actables.pdb"
  "test_core_actables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_actables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
