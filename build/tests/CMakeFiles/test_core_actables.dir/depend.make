# Empty dependencies file for test_core_actables.
# This may be replaced when dependencies are built.
