# Empty compiler generated dependencies file for test_numeric_matrix.
# This may be replaced when dependencies are built.
