file(REMOVE_RECURSE
  "CMakeFiles/test_numeric_matrix.dir/test_numeric_matrix.cpp.o"
  "CMakeFiles/test_numeric_matrix.dir/test_numeric_matrix.cpp.o.d"
  "test_numeric_matrix"
  "test_numeric_matrix.pdb"
  "test_numeric_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numeric_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
