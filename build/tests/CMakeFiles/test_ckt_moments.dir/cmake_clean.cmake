file(REMOVE_RECURSE
  "CMakeFiles/test_ckt_moments.dir/test_ckt_moments.cpp.o"
  "CMakeFiles/test_ckt_moments.dir/test_ckt_moments.cpp.o.d"
  "test_ckt_moments"
  "test_ckt_moments.pdb"
  "test_ckt_moments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckt_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
