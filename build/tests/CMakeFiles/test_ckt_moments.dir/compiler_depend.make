# Empty compiler generated dependencies file for test_ckt_moments.
# This may be replaced when dependencies are built.
