# Empty dependencies file for test_ckt_transient.
# This may be replaced when dependencies are built.
