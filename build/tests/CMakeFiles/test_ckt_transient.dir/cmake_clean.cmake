file(REMOVE_RECURSE
  "CMakeFiles/test_ckt_transient.dir/test_ckt_transient.cpp.o"
  "CMakeFiles/test_ckt_transient.dir/test_ckt_transient.cpp.o.d"
  "test_ckt_transient"
  "test_ckt_transient.pdb"
  "test_ckt_transient[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckt_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
