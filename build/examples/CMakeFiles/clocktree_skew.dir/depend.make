# Empty dependencies file for clocktree_skew.
# This may be replaced when dependencies are built.
