file(REMOVE_RECURSE
  "CMakeFiles/clocktree_skew.dir/clocktree_skew.cpp.o"
  "CMakeFiles/clocktree_skew.dir/clocktree_skew.cpp.o.d"
  "clocktree_skew"
  "clocktree_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clocktree_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
