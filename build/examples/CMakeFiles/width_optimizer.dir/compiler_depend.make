# Empty compiler generated dependencies file for width_optimizer.
# This may be replaced when dependencies are built.
