file(REMOVE_RECURSE
  "CMakeFiles/width_optimizer.dir/width_optimizer.cpp.o"
  "CMakeFiles/width_optimizer.dir/width_optimizer.cpp.o.d"
  "width_optimizer"
  "width_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/width_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
