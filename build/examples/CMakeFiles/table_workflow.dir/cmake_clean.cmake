file(REMOVE_RECURSE
  "CMakeFiles/table_workflow.dir/table_workflow.cpp.o"
  "CMakeFiles/table_workflow.dir/table_workflow.cpp.o.d"
  "table_workflow"
  "table_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
