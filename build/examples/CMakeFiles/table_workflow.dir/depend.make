# Empty dependencies file for table_workflow.
# This may be replaced when dependencies are built.
