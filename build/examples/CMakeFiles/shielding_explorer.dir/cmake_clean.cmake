file(REMOVE_RECURSE
  "CMakeFiles/shielding_explorer.dir/shielding_explorer.cpp.o"
  "CMakeFiles/shielding_explorer.dir/shielding_explorer.cpp.o.d"
  "shielding_explorer"
  "shielding_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shielding_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
