# Empty dependencies file for shielding_explorer.
# This may be replaced when dependencies are built.
