#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown documentation.

Scans README.md and docs/*.md for markdown links/images whose target is a
relative path (external URLs and pure in-page anchors are ignored),
resolves each against the containing file, and exits 1 listing every
target that does not exist.  Anchored file links (docs/foo.md#section)
are checked for file existence only.

Run from anywhere:  python3 tools/check_doc_links.py
CI runs this in the docs job so a moved or renamed page cannot leave a
dangling reference behind.
"""
from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# [text](target) or ![alt](target); target may carry a "title".  Inline
# code spans are stripped first so protocol examples such as
# `[cancelled]` banners never parse as links.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_SPAN = re.compile(r"`[^`]*`")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, https:, mailto:


def doc_files() -> list[pathlib.Path]:
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def strip_fenced_code(text: str) -> str:
    # Drop ``` blocks: ASCII diagrams and shell examples contain bracket/
    # paren sequences that are not links.
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def check_file(path: pathlib.Path) -> list[str]:
    errors = []
    text = CODE_SPAN.sub("", strip_fenced_code(path.read_text(encoding="utf-8")))
    for match in LINK.finditer(text):
        target = match.group(1)
        if EXTERNAL.match(target) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(REPO)}: dead link '{target}' "
                f"(resolved {resolved})"
            )
    return errors


def main() -> int:
    files = doc_files()
    errors = [e for f in files for e in check_file(f)]
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} files, {len(errors)} dead links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
